#include "jpm/spec/spec.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "jpm/sim/policies.h"
#include "jpm/util/check.h"
#include "jpm/util/hash.h"

namespace jpm::spec {
namespace {

using util::json::Array;
using util::json::Object;
using util::json::Value;

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw SpecError(path + ": " + why);
}

std::string type_error(const char* expected, const Value& v) {
  return std::string("expected ") + expected + ", got " +
         Value::kind_name(v.kind());
}

// Enum <-> string tables. The reader's error message lists every name.
template <typename E>
struct EnumName {
  const char* name;
  E value;
};

constexpr EnumName<sim::DiskPolicyKind> kDiskPolicyNames[] = {
    {"two_competitive", sim::DiskPolicyKind::kTwoCompetitive},
    {"adaptive", sim::DiskPolicyKind::kAdaptive},
    {"predictive", sim::DiskPolicyKind::kPredictive},
    {"always_on", sim::DiskPolicyKind::kAlwaysOn},
    {"joint", sim::DiskPolicyKind::kJoint},
};
constexpr EnumName<sim::MemPolicyKind> kMemPolicyNames[] = {
    {"fixed", sim::MemPolicyKind::kFixed},
    {"power_down", sim::MemPolicyKind::kPowerDown},
    {"disable", sim::MemPolicyKind::kDisable},
    {"nap_all", sim::MemPolicyKind::kNapAll},
    {"joint", sim::MemPolicyKind::kJoint},
};
constexpr EnumName<core::AlphaEstimator> kAlphaEstimatorNames[] = {
    {"moment", core::AlphaEstimator::kMoment},
    {"mle", core::AlphaEstimator::kMle},
};
constexpr EnumName<core::TimeoutRule> kTimeoutRuleNames[] = {
    {"pareto", core::TimeoutRule::kPareto},
    {"exponential", core::TimeoutRule::kExponential},
    {"two_competitive", core::TimeoutRule::kTwoCompetitive},
};
constexpr EnumName<cluster::DistributionPolicy> kDistributionNames[] = {
    {"round_robin", cluster::DistributionPolicy::kRoundRobin},
    {"partitioned", cluster::DistributionPolicy::kPartitioned},
    {"unbalanced", cluster::DistributionPolicy::kUnbalanced},
};
constexpr EnumName<stream::OverloadPolicy> kOverloadPolicyNames[] = {
    {"block", stream::OverloadPolicy::kBlock},
    {"shed", stream::OverloadPolicy::kShed},
    {"degrade", stream::OverloadPolicy::kDegrade},
};
constexpr EnumName<Metric> kMetricNames[] = {
    {"total_pct", Metric::kTotalPct},
    {"disk_pct", Metric::kDiskPct},
    {"memory_pct", Metric::kMemoryPct},
    {"mean_latency_ms", Metric::kMeanLatencyMs},
    {"utilization_pct", Metric::kUtilizationPct},
    {"long_latency_per_s", Metric::kLongLatencyPerS},
    {"disk_accesses_millions", Metric::kDiskAccessesMillions},
    {"total_energy_kj", Metric::kTotalEnergyKj},
    {"disk_energy_kj", Metric::kDiskEnergyKj},
    {"memory_energy_kj", Metric::kMemoryEnergyKj},
    {"disk_shutdowns", Metric::kDiskShutdowns},
    {"hit_pct", Metric::kHitPct},
};

template <typename E, std::size_t N>
const char* enum_to_name(E value, const EnumName<E> (&names)[N]) {
  for (const auto& n : names) {
    if (n.value == value) return n.name;
  }
  JPM_CHECK_MSG(false, "enum value has no spec name");
  return "";
}

template <typename E, std::size_t N>
E enum_from_name(const std::string& s, const EnumName<E> (&names)[N],
                 const std::string& path) {
  for (const auto& n : names) {
    if (s == n.name) return n.value;
  }
  std::ostringstream os;
  os << "unknown value \"" << s << "\" (expected one of ";
  for (std::size_t i = 0; i < N; ++i) os << (i ? ", " : "") << names[i].name;
  os << ")";
  fail(path, os.str());
}

// ---- reader ----------------------------------------------------------------
// Wraps one JSON object; field() fills struct members from keys (omitted
// keys keep the default already in the member), tracks every key it was
// asked about, and finish() rejects leftovers by path.

class ObjectReader {
 public:
  ObjectReader(const Value& v, std::string path) : path_(std::move(path)) {
    if (!v.is_object()) fail(path_, type_error("object", v));
    obj_ = &v.as_object();
  }

  const std::string& path() const { return path_; }
  std::string key_path(const char* key) const { return path_ + "." + key; }

  // Marks `key` consumed and returns its value, or nullptr when absent.
  const Value* child(const char* key) {
    seen_.push_back(key);
    return obj_->find(key);
  }

  void field(const char* key, double* out) {
    if (const Value* v = child(key)) {
      if (!v->is_number()) fail(key_path(key), type_error("number", *v));
      *out = v->as_number();
    }
  }

  void field(const char* key, bool* out) {
    if (const Value* v = child(key)) {
      if (!v->is_bool()) fail(key_path(key), type_error("boolean", *v));
      *out = v->as_bool();
    }
  }

  void field(const char* key, std::string* out) {
    if (const Value* v = child(key)) {
      if (!v->is_string()) fail(key_path(key), type_error("string", *v));
      *out = v->as_string();
    }
  }

  void field(const char* key, std::uint64_t* out) {
    if (const Value* v = child(key)) *out = read_integer(*v, key_path(key));
  }

  void field(const char* key, std::uint32_t* out) {
    if (const Value* v = child(key)) {
      const std::uint64_t n = read_integer(*v, key_path(key));
      if (n > 0xffffffffull) fail(key_path(key), "value out of 32-bit range");
      *out = static_cast<std::uint32_t>(n);
    }
  }

  // Optional-with-default field: reading is the plain field (the member
  // already holds the default); the writer's overload omits the key when the
  // value equals the default, so adding such a knob leaves every existing
  // canonical scenario byte-identical.
  template <typename T>
  void field_default(const char* key, T* out, const T&) {
    field(key, out);
  }

  template <typename E, std::size_t N>
  void enum_field(const char* key, E* out, const EnumName<E> (&names)[N]) {
    if (const Value* v = child(key)) {
      if (!v->is_string()) fail(key_path(key), type_error("string", *v));
      *out = enum_from_name(v->as_string(), names, key_path(key));
    }
  }

  template <typename T, typename BindFn>
  void object_field(const char* key, T* out, BindFn bind) {
    if (const Value* v = child(key)) {
      ObjectReader r(*v, key_path(key));
      bind(r, *out);
      r.finish();
    }
  }

  // Every key the binder never asked about is unknown — reject it so typos
  // fail loudly instead of silently running the default.
  void finish() const {
    for (const auto& [key, value] : obj_->entries()) {
      (void)value;
      if (std::find(seen_.begin(), seen_.end(), key) == seen_.end()) {
        fail(path_ + "." + key, "unknown key");
      }
    }
  }

 private:
  static std::uint64_t read_integer(const Value& v, const std::string& path) {
    if (!v.is_number()) fail(path, type_error("number", v));
    const double d = v.as_number();
    if (!(d >= 0.0) || d != std::floor(d) || d > 9.007199254740992e15) {
      fail(path, "expected a nonnegative integer, got " +
                     util::json::format_number(d));
    }
    return static_cast<std::uint64_t>(d);
  }

  const Object* obj_ = nullptr;
  std::string path_;
  std::vector<std::string> seen_;
};

// ---- writer ----------------------------------------------------------------
// Mirrors ObjectReader's interface so one bind functor per struct defines
// both directions; fields serialize in bind order (deterministic).

class ObjectWriter {
 public:
  const std::string& path() const { return path_; }

  void field(const char* key, const double* v) { obj_[key] = Value{*v}; }
  void field(const char* key, const bool* v) { obj_[key] = Value{*v}; }
  void field(const char* key, const std::string* v) { obj_[key] = Value{*v}; }
  void field(const char* key, const std::uint64_t* v) { obj_[key] = Value{*v}; }
  void field(const char* key, const std::uint32_t* v) {
    obj_[key] = Value{static_cast<std::uint64_t>(*v)};
  }

  template <typename T>
  void field_default(const char* key, const T* v, const T& def) {
    if (*v != def) field(key, v);
  }

  template <typename E, std::size_t N>
  void enum_field(const char* key, const E* v, const EnumName<E> (&names)[N]) {
    obj_[key] = Value{enum_to_name(*v, names)};
  }

  template <typename T, typename BindFn>
  void object_field(const char* key, const T* v, BindFn bind) {
    ObjectWriter w;
    bind(w, const_cast<T&>(*v));
    obj_[key] = w.take();
  }

  Value take() { return Value{std::move(obj_)}; }

 private:
  Object obj_;
  std::string path_;
};

// The writer never mutates; it only reads through the non-const references
// the shared bind functors require. One bind functor per struct keeps the
// reader and writer field sets identical by construction.

struct BindWorkload {
  template <typename B>
  void operator()(B& b, workload::SynthesizerConfig& c) const {
    b.field("dataset_bytes", &c.dataset_bytes);
    b.field("byte_rate", &c.byte_rate);
    b.field("popularity", &c.popularity);
    b.field("duration_s", &c.duration_s);
    b.field("page_bytes", &c.page_bytes);
    b.field("file_scale", &c.file_scale);
    b.field("rate_modulation", &c.rate_modulation);
    b.field("modulation_period_s", &c.modulation_period_s);
    b.field("intra_request_spacing_s", &c.intra_request_spacing_s);
    b.field("temporal_locality", &c.temporal_locality);
    b.field("write_fraction", &c.write_fraction);
    bind_size_t(b, "locality_window", &c.locality_window);
    b.field("seed", &c.seed);
  }

  // std::size_t aliases std::uint64_t on LP64; keep one explicit bridge so
  // the field set stays written out even if the alias ever changes.
  template <typename B>
  static void bind_size_t(B& b, const char* key, std::size_t* v) {
    static_assert(sizeof(std::size_t) == sizeof(std::uint64_t));
    b.field(key, reinterpret_cast<std::uint64_t*>(v));
  }
};

struct BindRdram {
  template <typename B>
  void operator()(B& b, mem::RdramParams& c) const {
    b.field("bank_bytes", &c.bank_bytes);
    b.field("nap_mw_per_mb", &c.nap_mw_per_mb);
    b.field("dynamic_mj_per_mb", &c.dynamic_mj_per_mb);
    b.field("powerdown_fraction", &c.powerdown_fraction);
    b.field("powerdown_timeout_s", &c.powerdown_timeout_s);
    b.field("disable_timeout_s", &c.disable_timeout_s);
  }
};

struct BindDisk {
  template <typename B>
  void operator()(B& b, disk::DiskParams& c) const {
    b.field("active_w", &c.active_w);
    b.field("idle_w", &c.idle_w);
    b.field("standby_w", &c.standby_w);
    b.field("transition_j", &c.transition_j);
    b.field("spin_up_s", &c.spin_up_s);
    b.field("avg_seek_s", &c.avg_seek_s);
    b.field("avg_rotation_s", &c.avg_rotation_s);
    b.field("media_rate_bytes_per_s", &c.media_rate_bytes_per_s);
  }
};

struct BindJoint {
  template <typename B>
  void operator()(B& b, core::JointConfig& c) const {
    b.field("period_s", &c.period_s);
    b.field("window_s", &c.window_s);
    b.field("util_limit", &c.util_limit);
    b.field("delay_limit", &c.delay_limit);
    b.field("page_bytes", &c.page_bytes);
    b.field("unit_bytes", &c.unit_bytes);
    b.field("physical_bytes", &c.physical_bytes);
    b.enum_field("alpha_estimator", &c.alpha_estimator, kAlphaEstimatorNames);
    b.enum_field("timeout_rule", &c.timeout_rule, kTimeoutRuleNames);
    b.object_field("mem", &c.mem, BindRdram{});
    b.object_field("disk", &c.disk, BindDisk{});
  }
};

struct BindGuard {
  template <typename B>
  void operator()(B& b, fault::ManagerGuardConfig& c) const {
    b.field("enabled", &c.enabled);
    b.field("backoff_factor", &c.backoff_factor);
    b.field("relax_factor", &c.relax_factor);
    b.field("max_scale", &c.max_scale);
  }
};

struct BindFault {
  template <typename B>
  void operator()(B& b, fault::FaultPlan& c) const {
    b.field("enabled", &c.enabled);
    b.field("seed", &c.seed);
    b.field("p_spinup_fail", &c.p_spinup_fail);
    b.field("spinup_degrade_after", &c.spinup_degrade_after);
    b.field("spinup_backoff_s", &c.spinup_backoff_s);
    b.field("spinup_backoff_max_s", &c.spinup_backoff_max_s);
    b.field("degraded_service_factor", &c.degraded_service_factor);
    b.object_field("guard", &c.guard, BindGuard{});
    b.field("server_mtbf_s", &c.server_mtbf_s);
    b.field("server_outage_s", &c.server_outage_s);
  }
};

struct BindEngine {
  template <typename B>
  void operator()(B& b, sim::EngineConfig& c) const {
    b.object_field("joint", &c.joint, BindJoint{});
    b.field("disk_count", &c.disk_count);
    b.field("stripe_bytes", &c.stripe_bytes);
    b.field("long_latency_threshold_s", &c.long_latency_threshold_s);
    b.field("record_periods", &c.record_periods);
    b.field("prefill_cache", &c.prefill_cache);
    b.field("warm_up_s", &c.warm_up_s);
    b.field("flush_interval_s", &c.flush_interval_s);
    b.field("readahead_pages", &c.readahead_pages);
    b.field_default("batch_size", &c.batch_size,
                    sim::EngineConfig{}.batch_size);
    b.object_field("fault", &c.fault, BindFault{});
  }
};

struct BindPolicy {
  template <typename B>
  void operator()(B& b, sim::PolicySpec& c) const {
    b.field("name", &c.name);
    b.enum_field("disk", &c.disk, kDiskPolicyNames);
    b.enum_field("mem", &c.mem, kMemPolicyNames);
    b.field("fixed_bytes", &c.fixed_bytes);
    b.field("multi_speed", &c.multi_speed);
  }
};

struct BindCluster {
  template <typename B>
  void operator()(B& b, cluster::ClusterConfig& c) const {
    b.field("server_count", &c.server_count);
    b.enum_field("distribution", &c.distribution, kDistributionNames);
    b.field("partition_pages", &c.partition_pages);
    b.field("rate_cap_rps", &c.rate_cap_rps);
    b.field("rate_ewma_tau_s", &c.rate_ewma_tau_s);
    b.field("chassis_on_w", &c.chassis_on_w);
    b.field("chassis_off_w", &c.chassis_off_w);
    b.field("server_off_idle_s", &c.server_off_idle_s);
    b.field("server_boot_s", &c.server_boot_s);
  }
};

struct BindStream {
  template <typename B>
  void operator()(B& b, stream::StreamConfig& c) const {
    b.field("ring_capacity", &c.ring_capacity);
    b.enum_field("overload", &c.overload, kOverloadPolicyNames);
    b.field("high_watermark", &c.high_watermark);
    b.field("low_watermark", &c.low_watermark);
    b.field("block_timeout_s", &c.block_timeout_s);
    b.field("watchdog_timeout_s", &c.watchdog_timeout_s);
    b.field("max_batch", &c.max_batch);
  }
};

struct BindTable {
  template <typename B>
  void operator()(B& b, TableSpec& c) const {
    b.field("title", &c.title);
    b.enum_field("metric", &c.metric, kMetricNames);
  }
};

template <typename T, typename BindFn>
Value struct_to_json(const T& c, BindFn bind) {
  ObjectWriter w;
  bind(w, const_cast<T&>(c));
  return w.take();
}

template <typename T, typename BindFn>
T struct_from_json(const Value& v, const std::string& path, BindFn bind,
                   T defaults = T{}) {
  ObjectReader r(v, path);
  bind(r, defaults);
  r.finish();
  return defaults;
}

std::string require_label(ObjectReader& r) {
  const Value* v = r.child("label");
  if (v == nullptr) fail(r.path(), "missing required key \"label\"");
  if (!v->is_string()) {
    fail(r.key_path("label"), type_error("string", *v));
  }
  return v->as_string();
}

// Re-throws a component validate()'s std::invalid_argument with the JSON
// path prepended, preserving the knob-naming message.
template <typename Fn>
void validate_at(const std::string& path, Fn fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    fail(path, e.what());
  }
}

}  // namespace

// ---- per-struct entry points ----------------------------------------------

Value to_json(const workload::SynthesizerConfig& c) {
  return struct_to_json(c, BindWorkload{});
}
workload::SynthesizerConfig workload_from_json(const Value& v,
                                               const std::string& path) {
  return struct_from_json<workload::SynthesizerConfig>(v, path,
                                                       BindWorkload{});
}

Value to_json(const mem::RdramParams& c) {
  return struct_to_json(c, BindRdram{});
}
mem::RdramParams rdram_from_json(const Value& v, const std::string& path) {
  return struct_from_json<mem::RdramParams>(v, path, BindRdram{});
}

Value to_json(const disk::DiskParams& c) { return struct_to_json(c, BindDisk{}); }
disk::DiskParams disk_from_json(const Value& v, const std::string& path) {
  return struct_from_json<disk::DiskParams>(v, path, BindDisk{});
}

Value to_json(const core::JointConfig& c) {
  return struct_to_json(c, BindJoint{});
}
core::JointConfig joint_from_json(const Value& v, const std::string& path) {
  return struct_from_json<core::JointConfig>(v, path, BindJoint{});
}

Value to_json(const fault::FaultPlan& c) {
  return struct_to_json(c, BindFault{});
}
fault::FaultPlan fault_from_json(const Value& v, const std::string& path) {
  return struct_from_json<fault::FaultPlan>(v, path, BindFault{});
}

Value to_json(const sim::EngineConfig& c) {
  return struct_to_json(c, BindEngine{});
}
sim::EngineConfig engine_from_json(const Value& v, const std::string& path) {
  return struct_from_json<sim::EngineConfig>(v, path, BindEngine{});
}

Value to_json(const sim::PolicySpec& c) {
  return struct_to_json(c, BindPolicy{});
}
sim::PolicySpec policy_from_json(const Value& v, const std::string& path) {
  return struct_from_json<sim::PolicySpec>(v, path, BindPolicy{});
}

Value to_json(const cluster::ClusterConfig& c) {
  return struct_to_json(c, BindCluster{});
}
cluster::ClusterConfig cluster_from_json(const Value& v,
                                         const std::string& path) {
  return struct_from_json<cluster::ClusterConfig>(v, path, BindCluster{});
}

Value to_json(const stream::StreamConfig& c) {
  return struct_to_json(c, BindStream{});
}
stream::StreamConfig stream_from_json(const Value& v,
                                      const std::string& path) {
  return struct_from_json<stream::StreamConfig>(v, path, BindStream{});
}

Value to_json(const std::vector<sim::PolicySpec>& roster) {
  Array a;
  for (const auto& p : roster) a.push_back(to_json(p));
  return Value{std::move(a)};
}

std::vector<sim::PolicySpec> roster_from_json(const Value& v,
                                              const std::string& path) {
  std::vector<sim::PolicySpec> roster;
  if (v.is_array()) {
    const auto& a = v.as_array();
    roster.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      roster.push_back(
          policy_from_json(a[i], path + "[" + std::to_string(i) + "]"));
    }
    return roster;
  }
  if (!v.is_object()) fail(path, type_error("array or preset object", v));

  ObjectReader r(v, path);
  const Value* preset = r.child("preset");
  if (preset == nullptr) fail(path, "missing required key \"preset\"");
  if (!preset->is_string()) {
    fail(path + ".preset", type_error("string", *preset));
  }
  if (preset->as_string() != "paper") {
    fail(path + ".preset", "unknown value \"" + preset->as_string() +
                               "\" (expected one of paper)");
  }
  std::uint64_t physical_bytes = 128 * kGiB;
  r.field("physical_bytes", &physical_bytes);
  std::vector<std::uint64_t> fm_gib{8, 16, 32, 64, 128};
  if (const Value* fm = r.child("fm_gib")) {
    if (!fm->is_array()) fail(path + ".fm_gib", type_error("array", *fm));
    fm_gib.clear();
    const auto& a = fm->as_array();
    for (std::size_t i = 0; i < a.size(); ++i) {
      const std::string p = path + ".fm_gib[" + std::to_string(i) + "]";
      if (!a[i].is_number() || a[i].as_number() <= 0.0 ||
          a[i].as_number() != std::floor(a[i].as_number())) {
        fail(p, "expected a positive integer (GiB)");
      }
      fm_gib.push_back(static_cast<std::uint64_t>(a[i].as_number()));
    }
  }
  r.finish();
  return sim::paper_policies(physical_bytes, fm_gib);
}

namespace {

// The "trace": {"path": ...} event source of a workload point. An object
// (not a bare string) so future knobs (e.g. a window override) stay
// backward compatible.
std::string trace_source_from_json(const Value& v, const std::string& path) {
  ObjectReader r(v, path);
  std::string trace_path;
  r.field("path", &trace_path);
  r.finish();
  if (trace_path.empty()) {
    fail(path + ".path", "trace path must not be empty");
  }
  return trace_path;
}

}  // namespace

Value to_json(const std::vector<WorkloadPoint>& points) {
  Array a;
  for (const auto& p : points) {
    Object o;
    o["label"] = Value{p.label};
    o["workload"] = to_json(p.workload);
    if (!p.trace_path.empty()) {
      Object t;
      t["path"] = Value{p.trace_path};
      o["trace"] = Value{std::move(t)};
    }
    a.push_back(Value{std::move(o)});
  }
  return Value{std::move(a)};
}

Value to_json(const WorkloadGrid& grid) {
  Object o;
  o["base"] = to_json(grid.base);
  Object axes;
  for (const auto& [axis, values] : grid.axes) {
    Array a;
    for (const double value : values) a.push_back(Value{value});
    axes[axis] = Value{std::move(a)};
  }
  o["grid"] = Value{std::move(axes)};
  return Value{std::move(o)};
}

WorkloadGrid grid_from_json(const Value& v, const std::string& path) {
  ObjectReader r(v, path);
  WorkloadGrid grid;
  if (const Value* b = r.child("base")) {
    grid.base = workload_from_json(*b, path + ".base");
  }
  const Value* g = r.child("grid");
  if (g == nullptr) fail(path, "missing required key \"grid\"");
  if (!g->is_object()) fail(path + ".grid", type_error("object", *g));
  r.finish();
  for (const auto& [axis, values] : g->as_object().entries()) {
    const std::string p = path + ".grid." + axis;
    if (!values.is_array()) fail(p, type_error("array", values));
    const auto& a = values.as_array();
    if (a.empty()) fail(p, "axis needs at least one value");
    std::vector<double> parsed;
    parsed.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!a[i].is_number()) {
        fail(p + "[" + std::to_string(i) + "]", type_error("number", a[i]));
      }
      parsed.push_back(a[i].as_number());
    }
    grid.axes.emplace_back(axis, std::move(parsed));
  }
  if (grid.axes.empty()) fail(path + ".grid", "grid needs at least one axis");
  return grid;
}

namespace {

// Fleet sweeps are meant to be large, but a typo'd grid should not OOM the
// process before validation can complain.
constexpr std::size_t kGridPointCap = 100000;

}  // namespace

std::vector<WorkloadPoint> expand_grid(const WorkloadGrid& grid,
                                       const std::string& path) {
  if (grid.axes.empty()) fail(path + ".grid", "grid needs at least one axis");
  std::size_t total = 1;
  for (const auto& [axis, values] : grid.axes) {
    if (values.empty()) {
      fail(path + ".grid." + axis, "axis needs at least one value");
    }
    if (total > kGridPointCap / values.size()) {
      fail(path + ".grid", "grid expands past the " +
                               std::to_string(kGridPointCap) + "-point cap");
    }
    total *= values.size();
  }

  // Odometer over the axes: the last axis varies fastest, so the first
  // declared axis is the outermost loop of the cartesian product.
  std::vector<WorkloadPoint> points;
  points.reserve(total);
  std::vector<std::size_t> idx(grid.axes.size(), 0);
  for (std::size_t n = 0; n < total; ++n) {
    WorkloadPoint point;
    point.workload = grid.base;
    std::string label;
    for (std::size_t a = 0; a < grid.axes.size(); ++a) {
      const auto& [axis, values] = grid.axes[a];
      const double value = values[idx[a]];
      // Route the coordinate through the workload binder as a one-key
      // object: unknown axis names and type mismatches (e.g. a fractional
      // seed) fail with the binder's path-named SpecError.
      Object o;
      o[axis] = Value{value};
      const Value wrapped{std::move(o)};
      ObjectReader r(wrapped, path + ".grid");
      BindWorkload{}(r, point.workload);
      r.finish();
      point.axes.emplace_back(axis, value);
      if (a != 0) label += ",";
      label += axis + "=" + util::json::format_number(value);
    }
    point.label = std::move(label);
    points.push_back(std::move(point));
    for (std::size_t a = grid.axes.size(); a-- > 0;) {
      if (++idx[a] < grid.axes[a].second.size()) break;
      idx[a] = 0;
    }
  }
  return points;
}

std::vector<WorkloadPoint> workloads_from_json(const Value& v,
                                               const std::string& path) {
  std::vector<WorkloadPoint> points;
  if (v.is_array()) {
    const auto& a = v.as_array();
    points.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      const std::string p = path + "[" + std::to_string(i) + "]";
      ObjectReader r(a[i], p);
      WorkloadPoint point;
      point.label = require_label(r);
      if (const Value* w = r.child("workload")) {
        point.workload = workload_from_json(*w, p + ".workload");
      }
      if (const Value* t = r.child("trace")) {
        point.trace_path = trace_source_from_json(*t, p + ".trace");
      }
      r.finish();
      points.push_back(std::move(point));
    }
    return points;
  }
  if (!v.is_object()) fail(path, type_error("array or sweep object", v));
  if (v.as_object().find("grid") != nullptr) {
    if (v.as_object().find("points") != nullptr) {
      fail(path, "\"points\" and \"grid\" are mutually exclusive");
    }
    return expand_grid(grid_from_json(v, path), path);
  }

  // Sweep-axis form: base workload + per-point overrides.
  ObjectReader r(v, path);
  workload::SynthesizerConfig base;
  if (const Value* b = r.child("base")) {
    base = workload_from_json(*b, path + ".base");
  }
  const Value* pts = r.child("points");
  if (pts == nullptr) fail(path, "missing required key \"points\"");
  if (!pts->is_array()) fail(path + ".points", type_error("array", *pts));
  r.finish();
  const auto& a = pts->as_array();
  points.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string p = path + ".points[" + std::to_string(i) + "]";
    ObjectReader pr(a[i], p);
    WorkloadPoint point;
    point.label = require_label(pr);
    point.workload = base;
    BindWorkload{}(pr, point.workload);  // overrides any subset of keys
    if (const Value* t = pr.child("trace")) {
      point.trace_path = trace_source_from_json(*t, p + ".trace");
    }
    pr.finish();
    points.push_back(std::move(point));
  }
  return points;
}

// ---- scenario --------------------------------------------------------------

namespace {

OutputSpec output_from_json(const Value& v, const std::string& path) {
  OutputSpec out;
  ObjectReader r(v, path);
  r.field("header", &out.header);
  if (const Value* tables = r.child("tables")) {
    if (!tables->is_array()) {
      fail(path + ".tables", type_error("array", *tables));
    }
    const auto& a = tables->as_array();
    for (std::size_t i = 0; i < a.size(); ++i) {
      out.tables.push_back(struct_from_json<TableSpec>(
          a[i], path + ".tables[" + std::to_string(i) + "]", BindTable{}));
    }
  }
  r.finish();
  return out;
}

Value output_to_json(const OutputSpec& out) {
  Object o;
  o["header"] = Value{out.header};
  Array tables;
  for (const auto& t : out.tables) {
    tables.push_back(struct_to_json(t, BindTable{}));
  }
  o["tables"] = Value{std::move(tables)};
  return Value{std::move(o)};
}

}  // namespace

Scenario parse_scenario(const std::string& text) {
  Value root;
  std::string error;
  if (!util::json::parse(text, &root, &error)) {
    throw SpecError("$: malformed JSON: " + error);
  }
  ObjectReader r(root, "$");
  if (const Value* version = r.child("version")) {
    if (!version->is_number() || version->as_number() != 1.0) {
      fail("$.version", "unsupported scenario version (expected 1)");
    }
  }
  Scenario sc;
  r.field("name", &sc.name);
  r.field("description", &sc.description);
  if (const Value* w = r.child("workloads")) {
    if (w->is_object() && w->as_object().find("grid") != nullptr) {
      // Keep the grid spec so serialization re-emits the compact grid form
      // (a 1000-point scenario file must stay a 20-line file).
      if (w->as_object().find("points") != nullptr) {
        fail("$.workloads", "\"points\" and \"grid\" are mutually exclusive");
      }
      sc.grid = grid_from_json(*w, "$.workloads");
      sc.workloads = expand_grid(*sc.grid, "$.workloads");
    } else {
      sc.workloads = workloads_from_json(*w, "$.workloads");
    }
  }
  if (const Value* roster = r.child("roster")) {
    sc.roster = roster_from_json(*roster, "$.roster");
  }
  if (const Value* engine = r.child("engine")) {
    sc.engine = engine_from_json(*engine, "$.engine");
  }
  if (const Value* cl = r.child("cluster")) {
    sc.cluster = cluster_from_json(*cl, "$.cluster");
  }
  if (const Value* st = r.child("stream")) {
    sc.stream = stream_from_json(*st, "$.stream");
  }
  if (const Value* output = r.child("output")) {
    sc.output = output_from_json(*output, "$.output");
  }
  r.finish();
  return sc;
}

std::string serialize_scenario(const Scenario& sc) {
  Object root;
  root["version"] = Value{1};
  root["name"] = Value{sc.name};
  root["description"] = Value{sc.description};
  root["workloads"] =
      sc.grid.has_value() ? to_json(*sc.grid) : to_json(sc.workloads);
  root["roster"] = to_json(sc.roster);
  root["engine"] = to_json(sc.engine);
  if (sc.cluster.has_value()) root["cluster"] = to_json(*sc.cluster);
  if (sc.stream.has_value()) root["stream"] = to_json(*sc.stream);
  root["output"] = output_to_json(sc.output);
  return util::json::dump(Value{std::move(root)}, 2) + "\n";
}

void validate_scenario(const Scenario& sc) {
  const auto& jc = sc.engine.joint;
  for (std::size_t i = 0; i < sc.workloads.size(); ++i) {
    const std::string path =
        "$.workloads[" + std::to_string(i) + "].workload";
    const auto& w = sc.workloads[i].workload;
    validate_at(path, [&] { w.validate(); });
    // The engine adopts the workload's page size; check the memory geometry
    // against it the way Engine::init does, but with a named path.
    if (w.page_bytes != 0 && jc.unit_bytes % w.page_bytes != 0) {
      fail(path + ".page_bytes",
           "engine unit_bytes must be a whole number of pages");
    }
    if (w.page_bytes != 0 && jc.mem.bank_bytes % w.page_bytes != 0) {
      fail(path + ".page_bytes",
           "engine bank_bytes must be a whole number of pages");
    }
  }
  validate_at("$.engine.joint.disk", [&] { jc.disk.validate(); });
  validate_at("$.engine.fault", [&] { fault::validate(sc.engine.fault); });
  if (jc.unit_bytes == 0 || jc.physical_bytes % jc.unit_bytes != 0) {
    fail("$.engine.joint.physical_bytes",
         "physical memory must be a whole number of units");
  }
  if (jc.mem.bank_bytes == 0 || jc.physical_bytes % jc.mem.bank_bytes != 0) {
    fail("$.engine.joint.physical_bytes",
         "physical memory must be a whole number of banks");
  }
  if (sc.engine.disk_count == 0) {
    fail("$.engine.disk_count", "at least one disk is required");
  }
  if (sc.engine.batch_size == 0 || sc.engine.batch_size > 65536) {
    fail("$.engine.batch_size", "batch_size must be in [1, 65536]");
  }
  for (std::size_t i = 0; i < sc.roster.size(); ++i) {
    const std::string path = "$.roster[" + std::to_string(i) + "]";
    const auto& p = sc.roster[i];
    if (p.name.empty()) fail(path + ".name", "policy name must not be empty");
    if (p.joint_disk() != p.joint_memory()) {
      fail(path,
           "joint disk and joint memory policies must be used together");
    }
    if (p.mem == sim::MemPolicyKind::kFixed) {
      if (p.fixed_bytes == 0) {
        fail(path + ".fixed_bytes", "fixed memory size must be positive");
      }
      if (p.fixed_bytes > jc.physical_bytes) {
        fail(path + ".fixed_bytes",
             "fixed memory size exceeds physical_bytes");
      }
    }
    if (p.multi_speed && sc.engine.disk_count != 1) {
      fail(path + ".multi_speed", "multi-speed arrays are not modeled");
    }
  }
  if (sc.cluster.has_value()) {
    validate_at("$.cluster", [&] {
      cluster::ClusterConfig full = *sc.cluster;
      full.engine = sc.engine;
      full.validate();
    });
  }
  if (sc.stream.has_value()) {
    validate_at("$.stream", [&] { stream::validate(*sc.stream); });
  }
}

std::uint64_t fnv1a64(std::string_view bytes) { return util::fnv1a64(bytes); }

std::string scenario_hash(const Scenario& sc) {
  return util::hex16(fnv1a64(serialize_scenario(sc)));
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SpecError(path + ": cannot open scenario file");
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parse_scenario(text.str());
  } catch (const SpecError& e) {
    throw SpecError(path + ": " + e.what());
  }
}

cluster::ClusterConfig cluster_config(const Scenario& sc) {
  JPM_CHECK_MSG(sc.cluster.has_value(),
                "scenario has no cluster section");
  cluster::ClusterConfig cfg = *sc.cluster;
  cfg.engine = sc.engine;
  return cfg;
}

}  // namespace jpm::spec
