// Executing a Scenario: the shared driver behind `jpm run` and the migrated
// bench harnesses.
//
// A scenario file always stores the full-scale experiment (paper durations).
// The JPM_BENCH_FAST=1 smoke mode is a *transform* of those numbers —
// apply_fast_mode halves the warm-up and quarters the measured window — so
// one checked-in file serves both modes and both producers (`jpm run`,
// bench binaries) print byte-identical tables for the same mode.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "jpm/sim/runner.h"
#include "jpm/spec/spec.h"

namespace jpm::spec {

// The paper-harness cell formatters. Shared (bench_common.h delegates here)
// so spec-driven tables are byte-identical to hand-written ones.
inline std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

inline std::string ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", seconds * 1e3);
  return buf;
}

inline std::string num(double v, int precision = 2) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

// JPM_BENCH_FAST=1 in the environment.
bool fast_mode();

// The checked-in scenario directory: $JPM_SCENARIO_DIR when set, else the
// build-time default (<source>/scenarios).
std::string scenario_dir();

// "<scenario_dir()>/<name>.json" — how harnesses name their scenario.
std::string scenario_path(const std::string& name);

// Rescales the scenario in place to the smoke-run schedule: warm-up is
// halved, the measured window (each workload's duration minus the engine
// warm-up) is quartered. Equals the bench harnesses' historical fast-mode
// numbers (e.g. 1200 s + 3600 s -> 600 s + 900 s).
void apply_fast_mode(Scenario& sc);

// Loads a scenario file and applies the fast transform when JPM_BENCH_FAST
// is set — what every scenario consumer that produces tables should use.
Scenario load_for_run(const std::string& path);

// Measured minutes of the first workload point: (duration - warm-up) / 60.
double measured_minutes(const Scenario& sc);

// The scenario header with "{measured_min}" expanded (default ostream
// formatting, matching the harnesses' `<< minutes` output).
std::string expand_header(const Scenario& sc);

// One cell of a result table.
std::string format_metric(Metric metric, const sim::RunOutcome& outcome);

// Renders one metric across the sweep exactly like the bench harnesses:
// rows = roster policies, columns = sweep points.
void print_metric_table(const std::string& title,
                        const std::vector<sim::SweepPoint>& points,
                        Metric metric);

// Publishes the resolved scenario + content hash to telemetry provenance
// (telemetry::set_scenario); the run report embeds both.
void publish_provenance(const Scenario& sc);

struct RunOptions {
  // Per-run progress lines (serialized, any order); bench harnesses pass
  // their stderr progress printer.
  std::function<void(const std::string&)> progress;
};

// The fixed summary table of a cluster sweep: one row per (point, policy)
// job, in job order — pipeline/chassis/total energy, balance index, mean
// latency, power cycles, failover count.
void print_cluster_table(const std::vector<cluster::ClusterSweepPoint>& points);

// The full driver: publishes provenance, prints the expanded header (when
// non-empty), executes the sweep, prints every configured table, and returns
// the sweep points for bespoke post-processing.
//
// Scenarios with a cluster section instead run every roster policy's
// ClusterEngine at every workload point (no always-on baseline required —
// cluster metrics are absolute) and print the fixed cluster summary table;
// `output.tables`, which name single-server sweep metrics, are ignored, and
// the return value is empty. Use cluster::run_cluster_sweep directly for
// bespoke post-processing of cluster outcomes.
std::vector<sim::SweepPoint> run_scenario(const Scenario& sc,
                                          const RunOptions& options = {});

}  // namespace jpm::spec
