// Closed-form timeout analysis from paper Section IV-C/IV-D (equations 2-6).
//
// All functions take a fitted idle-interval distribution plus per-period
// counts and return expectations over one period of length T. A timeout of
// +infinity means "never spin down" and is handled exactly (zero shutdowns,
// zero off time).
#pragma once

#include <limits>

#include "jpm/pareto/pareto.h"

namespace jpm::pareto {

inline constexpr double kNeverTimeout = std::numeric_limits<double>::infinity();

// Disk-side constants needed by the timeout math.
struct DiskTimeoutParams {
  double static_power_w = 6.6;   // p_d: idle minus standby power
  double break_even_s = 11.7;    // t_be: transition energy / p_d
  double transition_s = 10.0;    // t_tr: round-trip mode transition time
};

// Expected total off (standby) time per period (eq. 2):
//   t_s = n_i * E[(L - t_o)+].
double expected_off_time(const ParetoDistribution& idle, double n_idle,
                         double timeout);

// Expected number of shutdowns per period (eq. 3): h = n_i * P(L > t_o).
double expected_shutdowns(const ParetoDistribution& idle, double n_idle,
                          double timeout);

// Expected disk power (static + transition) under the timeout policy (eq. 4):
//   (1/T) [ p_d (T - t_s) + p_d t_be h ].
// Dynamic (access) power is not included — the timeout does not change it.
double expected_power(const ParetoDistribution& idle, double n_idle,
                      double period_s, double timeout,
                      const DiskTimeoutParams& disk);

// Energy-optimal timeout (eq. 5): t_o = alpha * t_be.
double optimal_timeout(const ParetoDistribution& idle,
                       const DiskTimeoutParams& disk);

// Expected fraction of disk-cache requests delayed by more than half a second
// due to spin-up (left side of eq. 6):
//   h * (t_tr - 0.5) * (n_disk / T) / n_cache_accesses.
double expected_delayed_ratio(const ParetoDistribution& idle, double n_idle,
                              double n_disk, double n_cache_accesses,
                              double period_s, double timeout,
                              const DiskTimeoutParams& disk);

// Smallest timeout satisfying the delayed-request constraint (from eq. 6):
//   t_o >= beta * (n_i * n_d * (t_tr - 0.5) / (N * T * D))^(1/alpha).
// Returns 0 when the constraint is satisfied by any timeout (e.g. n_i or n_d
// is 0) and kNeverTimeout when no finite timeout can satisfy it (cannot
// happen for D > 0, kept for interface symmetry).
double min_timeout_for_delay_constraint(const ParetoDistribution& idle,
                                        double n_idle, double n_disk,
                                        double n_cache_accesses,
                                        double period_s, double max_ratio,
                                        const DiskTimeoutParams& disk);

}  // namespace jpm::pareto
