#include "jpm/pareto/timeout_math.h"

#include <algorithm>
#include <cmath>

#include "jpm/util/check.h"

namespace jpm::pareto {

double expected_off_time(const ParetoDistribution& idle, double n_idle,
                         double timeout) {
  JPM_CHECK(n_idle >= 0.0);
  JPM_CHECK(timeout >= 0.0);
  if (n_idle == 0.0 || std::isinf(timeout)) return 0.0;
  return n_idle * idle.expected_excess(timeout);
}

double expected_shutdowns(const ParetoDistribution& idle, double n_idle,
                          double timeout) {
  JPM_CHECK(n_idle >= 0.0);
  JPM_CHECK(timeout >= 0.0);
  if (n_idle == 0.0 || std::isinf(timeout)) return 0.0;
  return n_idle * idle.survival(timeout);
}

double expected_power(const ParetoDistribution& idle, double n_idle,
                      double period_s, double timeout,
                      const DiskTimeoutParams& disk) {
  JPM_CHECK(period_s > 0.0);
  const double t_s = expected_off_time(idle, n_idle, timeout);
  const double h = expected_shutdowns(idle, n_idle, timeout);
  // Clamp: with a very small timeout the fitted tail can predict more off
  // time than the period holds; the true power is never negative.
  const double on_time = std::max(period_s - t_s, 0.0);
  return (disk.static_power_w * on_time +
          disk.static_power_w * disk.break_even_s * h) /
         period_s;
}

double optimal_timeout(const ParetoDistribution& idle,
                       const DiskTimeoutParams& disk) {
  return idle.alpha() * disk.break_even_s;
}

double expected_delayed_ratio(const ParetoDistribution& idle, double n_idle,
                              double n_disk, double n_cache_accesses,
                              double period_s, double timeout,
                              const DiskTimeoutParams& disk) {
  JPM_CHECK(period_s > 0.0);
  if (n_cache_accesses <= 0.0) return 0.0;
  const double h = expected_shutdowns(idle, n_idle, timeout);
  const double window = std::max(disk.transition_s - 0.5, 0.0);
  return h * window * (n_disk / period_s) / n_cache_accesses;
}

double min_timeout_for_delay_constraint(const ParetoDistribution& idle,
                                        double n_idle, double n_disk,
                                        double n_cache_accesses,
                                        double period_s, double max_ratio,
                                        const DiskTimeoutParams& disk) {
  JPM_CHECK(max_ratio > 0.0);
  JPM_CHECK(period_s > 0.0);
  const double window = std::max(disk.transition_s - 0.5, 0.0);
  if (n_idle <= 0.0 || n_disk <= 0.0 || n_cache_accesses <= 0.0 ||
      window == 0.0) {
    return 0.0;  // nothing can be delayed; any timeout satisfies eq. 6
  }
  // n_i (beta/t_o)^alpha * window * n_d / (T * N) <= D
  //   => (beta/t_o)^alpha <= D * T * N / (n_i * n_d * window)
  const double rhs =
      max_ratio * period_s * n_cache_accesses / (n_idle * n_disk * window);
  if (rhs >= 1.0) return 0.0;  // satisfied even if every interval shuts down
  const double t_min = idle.beta() / std::pow(rhs, 1.0 / idle.alpha());
  return t_min;
}

}  // namespace jpm::pareto
