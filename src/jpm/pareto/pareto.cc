#include "jpm/pareto/pareto.h"

#include <algorithm>
#include <cmath>

#include "jpm/util/check.h"

namespace jpm::pareto {

ParetoDistribution::ParetoDistribution(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  JPM_CHECK_MSG(alpha > 1.0, "Pareto alpha must exceed 1 (finite mean)");
  JPM_CHECK_MSG(beta > 0.0, "Pareto beta must be positive");
}

double ParetoDistribution::pdf(double l) const {
  if (l <= beta_) return 0.0;
  return alpha_ * std::pow(beta_, alpha_) / std::pow(l, alpha_ + 1.0);
}

double ParetoDistribution::cdf(double l) const {
  if (l <= beta_) return 0.0;
  return 1.0 - std::pow(beta_ / l, alpha_);
}

double ParetoDistribution::survival(double l) const {
  if (l <= beta_) return 1.0;
  return std::pow(beta_ / l, alpha_);
}

double ParetoDistribution::mean() const {
  return alpha_ * beta_ / (alpha_ - 1.0);
}

double ParetoDistribution::quantile(double q) const {
  JPM_CHECK(q >= 0.0 && q < 1.0);
  return beta_ / std::pow(1.0 - q, 1.0 / alpha_);
}

double ParetoDistribution::sample(Rng& rng) const {
  return quantile(rng.uniform());
}

double ParetoDistribution::expected_excess(double t) const {
  if (t <= beta_) {
    // Whole distribution lies above t: E[L] - t.
    return mean() - t;
  }
  // integral_t^inf S(x) dx = beta^alpha * t^(1-alpha) / (alpha-1)
  //                        = (beta/t)^(alpha-1) * beta / (alpha-1).   (eq. 2 core)
  return std::pow(beta_ / t, alpha_ - 1.0) * beta_ / (alpha_ - 1.0);
}

double estimate_alpha_from_mean(double sample_mean, double beta) {
  JPM_CHECK(beta > 0.0);
  if (sample_mean <= beta) return kMaxAlpha;  // intervals barely above beta
  const double alpha = sample_mean / (sample_mean - beta);
  return std::clamp(alpha, kMinAlpha, kMaxAlpha);
}

double estimate_alpha_mle(const std::vector<double>& samples, double beta) {
  JPM_CHECK(beta > 0.0);
  JPM_CHECK(!samples.empty());
  double log_sum = 0.0;
  for (double x : samples) {
    log_sum += std::log(std::max(x, beta) / beta);
  }
  if (log_sum <= 0.0) return kMaxAlpha;
  return std::clamp(static_cast<double>(samples.size()) / log_sum, kMinAlpha,
                    kMaxAlpha);
}

double estimate_alpha_mle_from_sums(std::uint64_t count, double log_sum,
                                    double beta) {
  JPM_CHECK(beta > 0.0);
  JPM_CHECK(count > 0);
  const double n = static_cast<double>(count);
  const double excess = log_sum - n * std::log(beta);
  if (excess <= 0.0) return kMaxAlpha;
  return std::clamp(n / excess, kMinAlpha, kMaxAlpha);
}

ParetoDistribution fit_from_mean(double sample_mean, double beta) {
  return ParetoDistribution(estimate_alpha_from_mean(sample_mean, beta), beta);
}

ParetoDistribution fit_mle(const std::vector<double>& samples, double beta) {
  return ParetoDistribution(estimate_alpha_mle(samples, beta), beta);
}

}  // namespace jpm::pareto
