// Pareto distribution of disk idle-interval lengths (paper Section IV-C).
//
// f(l) = alpha * beta^alpha / l^(alpha+1) for l > beta, alpha > 1. beta is the
// shortest idle interval (the joint manager uses its aggregation window w) and
// alpha controls tail weight: small alpha => more long intervals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "jpm/util/rng.h"

namespace jpm::pareto {

class ParetoDistribution {
 public:
  // Requires alpha > 1 (finite mean, as the paper assumes) and beta > 0.
  ParetoDistribution(double alpha, double beta);

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

  double pdf(double l) const;
  double cdf(double l) const;
  // P(L > l); 1 for l <= beta.
  double survival(double l) const;
  // E[L] = alpha*beta/(alpha-1).
  double mean() const;
  // Inverse CDF. q in [0, 1).
  double quantile(double q) const;
  double sample(Rng& rng) const;

  // Expected excess over a threshold: E[(L - t)+] (closed form; t may be < beta).
  double expected_excess(double t) const;

 private:
  double alpha_;
  double beta_;
};

// Paper's moment estimator (Section IV-C): the mean of a Pareto is
// alpha*beta/(alpha-1), so alpha = mean/(mean - beta). The result is clamped
// to (kMinAlpha, kMaxAlpha) to stay in the finite-mean regime even for
// degenerate samples (mean barely above beta, or huge).
inline constexpr double kMinAlpha = 1.0 + 1e-6;
inline constexpr double kMaxAlpha = 1e3;
double estimate_alpha_from_mean(double sample_mean, double beta);

// Maximum-likelihood alpha given known beta: n / sum(ln(x_i / beta)).
// Samples below beta are clamped to beta. Returns clamped alpha.
double estimate_alpha_mle(const std::vector<double>& samples, double beta);

// Streaming MLE variant from sufficient statistics: sample count and
// sum(ln(x_i)). Equivalent to estimate_alpha_mle without retaining samples.
double estimate_alpha_mle_from_sums(std::uint64_t count, double log_sum,
                                    double beta);

ParetoDistribution fit_from_mean(double sample_mean, double beta);
ParetoDistribution fit_mle(const std::vector<double>& samples, double beta);

}  // namespace jpm::pareto
