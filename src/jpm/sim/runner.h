// Experiment runner: executes policy rosters over workload sweeps and
// normalizes results against the always-on baseline, the way every evaluation
// figure in the paper is reported.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "jpm/sim/engine.h"

namespace jpm::sim {

struct RunOutcome {
  PolicySpec spec;
  RunMetrics metrics;
  NormalizedEnergy normalized;  // vs the sweep's always-on run
};

struct SweepPoint {
  std::string label;                   // e.g. "16GB" or "100MB/s"
  workload::SynthesizerConfig workload;
  std::vector<RunOutcome> outcomes;    // same order as the policy roster
  RunMetrics baseline;                 // the always-on run
};

// One sweep point's event source: synthesized from `workload` (the default),
// or — when `trace_path` is set — replayed from a JPMC trace file (see
// jpm/tracefile/) that is mmap'd once and shared read-only by all of the
// point's policy runs, each decoding one chunk window at a time. The file's
// page size must match the workload section's (the geometry the scenario was
// validated against); metrics are bit-identical to synthesizing when the
// file came from synthesize_to_file of the same workload config.
struct SweepWorkload {
  std::string label;
  workload::SynthesizerConfig workload;
  std::string trace_path;  // empty = synthesize
};

// Runs every policy for every workload; the roster must contain exactly one
// always-on entry, used as the normalization baseline. Each workload's trace
// is synthesized (or mmap'd) once and shared read-only by all of its policy
// runs, which fan out across a fixed thread pool (JPM_THREADS workers,
// default hardware concurrency, 1 = serial) — results are bit-identical
// regardless of the worker count. `progress` (optional) is invoked with a
// human-readable line after each run; calls are serialized but may arrive in
// any run order.
std::vector<SweepPoint> run_sweep(
    const std::vector<SweepWorkload>& workloads,
    const std::vector<PolicySpec>& roster, const EngineConfig& config,
    const std::function<void(const std::string&)>& progress = {});

// Legacy label/config pair form (bench harnesses); synthesizes every point.
std::vector<SweepPoint> run_sweep(
    const std::vector<std::pair<std::string, workload::SynthesizerConfig>>&
        workloads,
    const std::vector<PolicySpec>& roster, const EngineConfig& config,
    const std::function<void(const std::string&)>& progress = {});

}  // namespace jpm::sim
