// Experiment runner: executes policy rosters over workload sweeps and
// normalizes results against the always-on baseline, the way every evaluation
// figure in the paper is reported.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "jpm/sim/engine.h"

namespace jpm::sim {

// Reorders lines produced by concurrently completing jobs so the sink sees
// them in job order, not completion order. Workers call emit(job, line) as
// they finish; each line is buffered until every lower-numbered job has
// emitted, then the contiguous prefix flushes to the sink. The full progress
// stream is therefore deterministic under any scheduler — a prerequisite for
// the work-stealing fan-out, where completion order varies run to run. Sink
// calls are serialized (made under the internal lock). Each job must emit
// exactly once.
class OrderedProgress {
 public:
  OrderedProgress(std::size_t jobs,
                  std::function<void(const std::string&)> sink);
  void emit(std::size_t job, std::string line);

 private:
  std::function<void(const std::string&)> sink_;
  std::mutex mu_;
  std::vector<std::string> lines_;
  std::vector<bool> ready_;
  std::size_t next_ = 0;
};

struct RunOutcome {
  PolicySpec spec;
  RunMetrics metrics;
  NormalizedEnergy normalized;  // vs the sweep's always-on run
};

struct SweepPoint {
  std::string label;                   // e.g. "16GB" or "100MB/s"
  workload::SynthesizerConfig workload;
  std::vector<RunOutcome> outcomes;    // same order as the policy roster
  RunMetrics baseline;                 // the always-on run
};

// One sweep point's event source: synthesized from `workload` (the default),
// or — when `trace_path` is set — replayed from a JPMC trace file (see
// jpm/tracefile/) that is mmap'd once and shared read-only by all of the
// point's policy runs, each decoding one chunk window at a time. The file's
// page size must match the workload section's (the geometry the scenario was
// validated against); metrics are bit-identical to synthesizing when the
// file came from synthesize_to_file of the same workload config.
struct SweepWorkload {
  std::string label;
  workload::SynthesizerConfig workload;
  std::string trace_path;  // empty = synthesize
  // Grid provenance: the point's coordinates on each named sweep axis, in
  // axis declaration order (empty for hand-listed points). Published into
  // the point's telemetry runs as `axis/<name>` gauges so reports are
  // self-describing about where in the grid each run sits.
  std::vector<std::pair<std::string, double>> axes;
};

// Runs every policy for every workload; the roster must contain exactly one
// always-on entry, used as the normalization baseline. Each workload's trace
// is synthesized (or mmap'd) once and shared read-only by all of its policy
// runs, which fan out as stealable tasks (JPM_THREADS workers, default
// hardware concurrency, 1 = serial; JPM_SCHED picks the schedule) — results
// are bit-identical regardless of worker count or schedule. `progress`
// (optional) is invoked with a human-readable line per run, serialized and
// in deterministic job order (point-major, each point's baseline first)
// regardless of completion order.
std::vector<SweepPoint> run_sweep(
    const std::vector<SweepWorkload>& workloads,
    const std::vector<PolicySpec>& roster, const EngineConfig& config,
    const std::function<void(const std::string&)>& progress = {});

// Legacy label/config pair form (bench harnesses); synthesizes every point.
std::vector<SweepPoint> run_sweep(
    const std::vector<std::pair<std::string, workload::SynthesizerConfig>>&
        workloads,
    const std::vector<PolicySpec>& roster, const EngineConfig& config,
    const std::function<void(const std::string&)>& progress = {});

}  // namespace jpm::sim
