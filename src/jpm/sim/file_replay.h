// File-backed replay: streams a JPMC trace through the push-mode Engine one
// chunk window at a time, so a run over a billion-event file holds one
// decoded chunk (~24 bytes x chunk window) in RAM, never the whole trace.
//
// The mechanism is the same core every other source uses: begin_stream()
// constructs a LiveSource engine from the file header's geometry,
// push_chunk() decodes chunk i into the reusable buffer and feeds it through
// Engine::push_chunk (the batched hot path), finish_stream() closes the run
// at the header's declared duration. Engine::feed is chunking-invariant and
// run() == push-everything + finish(duration), so the returned metrics are
// bit-identical to an in-memory replay of the same events — the contract the
// chunked-vs-in-memory differential tests pin down.
#pragma once

#include <cstddef>
#include <optional>

#include "jpm/sim/engine.h"
#include "jpm/tracefile/reader.h"

namespace jpm::sim {

class FileReplay {
 public:
  // The reader must outlive the replay and may be shared (const, read-only)
  // with any number of concurrent FileReplay instances — one mmap serves the
  // whole sweep.
  FileReplay(const tracefile::TraceReader& reader, const PolicySpec& policy,
             const EngineConfig& config);

  // Constructs the engine from the file header (page_bytes, total_pages,
  // duration). Idempotent; push_chunk calls it on demand.
  void begin_stream();
  // Decodes chunk i and pushes it through the engine's batched path. Chunks
  // must be fed in file order, each exactly once.
  void push_chunk(std::size_t i);
  // Closes the run at the header's duration and returns the metrics.
  // Single-shot, like Engine::run().
  RunMetrics finish_stream();

  // begin + every chunk in order + finish.
  RunMetrics run();

  // Peak decode-buffer capacity so far — the replay's working-set bound,
  // asserted O(chunk window) by the capped-RSS smoke test.
  std::size_t peak_buffer_bytes() const { return peak_buffer_bytes_; }

 private:
  const tracefile::TraceReader& reader_;
  PolicySpec policy_;
  EngineConfig config_;
  std::optional<Engine> engine_;
  tracefile::ChunkBuffer buffer_;
  std::size_t peak_buffer_bytes_ = 0;
};

// Convenience: replay the whole file and return the metrics.
RunMetrics replay_file(const tracefile::TraceReader& reader,
                       const PolicySpec& policy, const EngineConfig& config);

}  // namespace jpm::sim
