// Run-level metrics: everything the paper's figures and tables report.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "jpm/disk/disk_power.h"
#include "jpm/fault/fault.h"
#include "jpm/mem/energy_meter.h"

namespace jpm::sim {

// One row of the Fig. 9 style per-period timeline.
struct PeriodRecord {
  double start_s = 0.0;
  double end_s = 0.0;
  std::uint64_t cache_accesses = 0;
  std::uint64_t disk_accesses = 0;
  double mean_idle_s = 0.0;       // measured gaps >= aggregation window
  std::uint64_t memory_units = 0; // capacity in effect at period end
  double timeout_s = 0.0;         // disk timeout in effect at period end
  double busy_s = 0.0;            // disk busy time inside the period
  std::uint64_t delayed_requests = 0;  // accesses that waited on a spin-up
  // Stream-mode overload accounting (always 0 / false for trace replays):
  // events shed at the ingress ring while this period was current, and the
  // degraded-accuracy flag (set when events were shed or the manager was
  // pinned to the forced-conservative overload posture).
  std::uint64_t shed_events = 0;
  bool degraded = false;
};

struct RunMetrics {
  std::string policy_name;
  double duration_s = 0.0;

  mem::MemoryEnergyBreakdown mem_energy;
  disk::DiskEnergyBreakdown disk_energy;

  std::uint64_t cache_accesses = 0;
  std::uint64_t disk_accesses = 0;   // read misses served by the disk
  std::uint64_t disk_writes = 0;     // flush / eviction / shutdown writebacks
  std::uint64_t readahead_fetches = 0;
  std::uint64_t disk_shutdowns = 0;
  std::uint64_t spin_ups = 0;
  double disk_busy_s = 0.0;
  std::uint32_t spindle_count = 1;  // disks in the storage backend

  // Sum of request latencies across ALL disk-cache accesses. Only read
  // misses contribute nonzero terms (cache hits are ~0 and add nothing),
  // but the sum semantically covers every access — which is why
  // mean_latency_s() divides by cache_accesses, not disk_accesses.
  double total_latency_s = 0.0;
  std::uint64_t long_latency_count = 0;  // latency > threshold (0.5 s)

  // Fault-injection outcome (all-zero on a fault-free run).
  fault::ReliabilityMetrics reliability;

  std::vector<PeriodRecord> periods;

  double total_j() const {
    return mem_energy.total_j() + disk_energy.total_j();
  }
  // Average latency over ALL disk-cache accesses, hits included (paper
  // Fig. 7d plots exactly this: misses are diluted by the hit count, so a
  // policy with a 99% hit ratio reports ~1% of its miss latency here). For
  // per-miss latency divide total_latency_s by disk_accesses instead.
  double mean_latency_s() const {
    return cache_accesses == 0
               ? 0.0
               : total_latency_s / static_cast<double>(cache_accesses);
  }
  // Average per-spindle utilization.
  double utilization() const {
    return duration_s == 0.0
               ? 0.0
               : disk_busy_s / (duration_s * std::max(spindle_count, 1u));
  }
  double long_latency_per_s() const {
    return duration_s == 0.0
               ? 0.0
               : static_cast<double>(long_latency_count) / duration_s;
  }
  double hit_ratio() const {
    return cache_accesses == 0
               ? 0.0
               : 1.0 - static_cast<double>(disk_accesses) /
                           static_cast<double>(cache_accesses);
  }
};

// Energy of `m` expressed as a fraction of `baseline` (the always-on method),
// the normalization every energy plot in the paper uses.
struct NormalizedEnergy {
  double total = 0.0;
  double disk = 0.0;
  double memory = 0.0;
};
NormalizedEnergy normalize_energy(const RunMetrics& m,
                                  const RunMetrics& baseline);

}  // namespace jpm::sim
