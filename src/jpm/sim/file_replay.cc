#include "jpm/sim/file_replay.h"

#include <algorithm>

#include "jpm/util/check.h"

namespace jpm::sim {

FileReplay::FileReplay(const tracefile::TraceReader& reader,
                       const PolicySpec& policy, const EngineConfig& config)
    : reader_(reader), policy_(policy), config_(config) {}

void FileReplay::begin_stream() {
  if (engine_.has_value()) return;
  const tracefile::FileHeader& h = reader_.header();
  JPM_CHECK_MSG(h.page_bytes > 0,
                reader_.name() + ": header declares zero page_bytes; "
                                 "repack with --page-bytes to replay");
  JPM_CHECK_MSG(h.total_pages > 0,
                reader_.name() + ": header declares zero total_pages; "
                                 "repack with --total-pages to replay");
  LiveSource source;
  source.page_bytes = h.page_bytes;
  source.total_pages = h.total_pages;
  source.duration_hint_s = h.duration_s;
  engine_.emplace(source, policy_, config_);
}

void FileReplay::push_chunk(std::size_t i) {
  begin_stream();
  reader_.decode_chunk(i, buffer_);
  engine_->push_chunk(buffer_.times.data(), buffer_.pages.data(),
                      buffer_.flags.data(), buffer_.size());
  peak_buffer_bytes_ = std::max(peak_buffer_bytes_, buffer_.capacity_bytes());
}

RunMetrics FileReplay::finish_stream() {
  begin_stream();
  // Same end-of-run rule as ReplayTrace: the declared duration, or the last
  // event's timestamp when the header carries none.
  double end_s = reader_.header().duration_s;
  if (end_s <= 0.0 && !reader_.chunks().empty()) {
    end_s = reader_.chunks().back().t_last;
  }
  return engine_->finish(end_s);
}

RunMetrics FileReplay::run() {
  begin_stream();
  for (std::size_t i = 0; i < reader_.chunks().size(); ++i) push_chunk(i);
  return finish_stream();
}

RunMetrics replay_file(const tracefile::TraceReader& reader,
                       const PolicySpec& policy, const EngineConfig& config) {
  return FileReplay(reader, policy, config).run();
}

}  // namespace jpm::sim
