#include "jpm/sim/runner.h"

#include <sstream>

#include "jpm/util/check.h"

namespace jpm::sim {

std::vector<SweepPoint> run_sweep(
    const std::vector<std::pair<std::string, workload::SynthesizerConfig>>&
        workloads,
    const std::vector<PolicySpec>& roster, const EngineConfig& config,
    const std::function<void(const std::string&)>& progress) {
  std::size_t baseline_index = roster.size();
  for (std::size_t i = 0; i < roster.size(); ++i) {
    if (roster[i].disk == DiskPolicyKind::kAlwaysOn &&
        !roster[i].multi_speed) {
      JPM_CHECK_MSG(baseline_index == roster.size(),
                    "roster must contain exactly one always-on policy");
      baseline_index = i;
    }
  }
  JPM_CHECK_MSG(baseline_index < roster.size(),
                "roster needs an always-on baseline");

  std::vector<SweepPoint> points;
  points.reserve(workloads.size());
  for (const auto& [label, workload] : workloads) {
    SweepPoint point;
    point.label = label;
    point.workload = workload;
    point.outcomes.reserve(roster.size());
    for (const auto& spec : roster) {
      RunOutcome outcome;
      outcome.spec = spec;
      outcome.metrics = run_simulation(workload, spec, config);
      point.outcomes.push_back(std::move(outcome));
      if (progress) {
        std::ostringstream os;
        os << "[" << label << "] " << spec.name << ": total "
           << point.outcomes.back().metrics.total_j() / 1e3 << " kJ, "
           << point.outcomes.back().metrics.disk_accesses << " disk accesses";
        progress(os.str());
      }
    }
    point.baseline = point.outcomes[baseline_index].metrics;
    for (auto& outcome : point.outcomes) {
      outcome.normalized = normalize_energy(outcome.metrics, point.baseline);
    }
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace jpm::sim
