#include "jpm/sim/runner.h"

#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "jpm/sim/file_replay.h"
#include "jpm/telemetry/registry.h"
#include "jpm/telemetry/telemetry.h"
#include "jpm/util/check.h"
#include "jpm/util/hash.h"
#include "jpm/util/parallel.h"

namespace jpm::sim {
namespace {

// The roster's single always-on entry: every energy figure normalizes
// against it, so its absence (or duplication) is a configuration error.
std::size_t find_baseline(const std::vector<PolicySpec>& roster) {
  std::size_t baseline = roster.size();
  for (std::size_t i = 0; i < roster.size(); ++i) {
    if (roster[i].disk == DiskPolicyKind::kAlwaysOn &&
        !roster[i].multi_speed) {
      JPM_CHECK_MSG(baseline == roster.size(),
                    "roster must contain exactly one always-on baseline; "
                    "found both \"" << roster[baseline].name << "\" and \""
                                    << roster[i].name << "\"");
      baseline = i;
    }
  }
  JPM_CHECK_MSG(baseline < roster.size(),
                "roster needs an always-on baseline to normalize energy "
                "against (no non-multi-speed always-on entry found)");
  return baseline;
}

}  // namespace

OrderedProgress::OrderedProgress(std::size_t jobs,
                                 std::function<void(const std::string&)> sink)
    : sink_(std::move(sink)), lines_(jobs), ready_(jobs, false) {}

void OrderedProgress::emit(std::size_t job, std::string line) {
  const std::lock_guard<std::mutex> lock(mu_);
  JPM_CHECK_MSG(job < ready_.size() && !ready_[job],
                "OrderedProgress: job " << job << " emitted twice or out of "
                                        << ready_.size());
  lines_[job] = std::move(line);
  ready_[job] = true;
  while (next_ < ready_.size() && ready_[next_]) {
    sink_(lines_[next_]);
    lines_[next_].clear();  // release the buffered line eagerly
    ++next_;
  }
}

std::vector<SweepPoint> run_sweep(
    const std::vector<SweepWorkload>& workloads,
    const std::vector<PolicySpec>& roster, const EngineConfig& config,
    const std::function<void(const std::string&)>& progress) {
  const std::size_t baseline_index = find_baseline(roster);
  const std::size_t n_points = workloads.size();
  const std::size_t n_policies = roster.size();

  // Materialize each sweep point's event source exactly once; every policy
  // run then consumes it read-only. Synthesized points build an in-RAM
  // trace; file-backed points mmap their JPMC file (index validated here,
  // chunks decoded per run inside a reusable window — the whole trace never
  // lands in memory). All randomness lives in the synthesizer, whose stream
  // derives solely from the point's seed, so neither sharing nor scheduling
  // can change any metric.
  TELEM_EVENT(kSweep, "sweep_begin", 0.0,
              {"points", static_cast<double>(n_points)},
              {"policies", static_cast<double>(n_policies)});
  std::vector<workload::Trace> traces(n_points);
  std::vector<std::unique_ptr<tracefile::TraceReader>> readers(n_points);
  util::parallel_for(n_points, [&](std::size_t i) {
    if (!workloads[i].trace_path.empty()) {
      const telemetry::SpanTimer span("map_trace", workloads[i].label);
      readers[i] =
          std::make_unique<tracefile::TraceReader>(workloads[i].trace_path);
      JPM_CHECK_MSG(
          readers[i]->header().page_bytes == workloads[i].workload.page_bytes,
          workloads[i].trace_path
              << ": trace page_bytes (" << readers[i]->header().page_bytes
              << ") disagrees with the workload section's ("
              << workloads[i].workload.page_bytes
              << ") the scenario was validated against");
    } else {
      const telemetry::SpanTimer span("synthesize", workloads[i].label);
      traces[i] = workload::synthesize_trace(workloads[i].workload);
    }
  });
  // Publish file provenance in point order (deterministic, independent of
  // the parallel open above).
  for (std::size_t i = 0; i < n_points; ++i) {
    if (readers[i] != nullptr) {
      telemetry::add_trace(workloads[i].trace_path,
                           util::hex16(readers[i]->header().content_hash));
    }
  }

  std::vector<SweepPoint> points(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    points[i].label = workloads[i].label;
    points[i].workload = workloads[i].workload;
    points[i].outcomes.resize(n_policies);
    for (std::size_t j = 0; j < n_policies; ++j) {
      points[i].outcomes[j].spec = roster[j];
    }
  }

  // Fan the independent policy runs out across cores (JPM_THREADS workers;
  // 1 = serial). Each point's baseline run is scheduled first so its metrics
  // are ready as early as possible; every task writes only its own
  // preallocated outcome slot, keeping results in roster order and
  // bit-identical to the serial path.
  std::vector<std::pair<std::size_t, std::size_t>> jobs;
  jobs.reserve(n_points * n_policies);
  for (std::size_t i = 0; i < n_points; ++i) {
    jobs.emplace_back(i, baseline_index);
    for (std::size_t j = 0; j < n_policies; ++j) {
      if (j != baseline_index) jobs.emplace_back(i, j);
    }
  }
  // Telemetry streams registered serially in structural order (point-major,
  // roster order) BEFORE the fan-out: stream ids — and therefore the report
  // — depend only on the sweep's shape, never on scheduling or JPM_THREADS.
  std::vector<telemetry::RunRecorder*> recorders;
  if (telemetry::session_active()) {
    recorders.resize(n_points * n_policies, nullptr);
    for (std::size_t i = 0; i < n_points; ++i) {
      for (std::size_t j = 0; j < n_policies; ++j) {
        telemetry::RunRecorder* rec =
            telemetry::begin_run(points[i].label + "/" + roster[j].name);
        // Grid provenance: the point's axis coordinates, stamped here on the
        // registering thread (the run's worker never touches these gauges).
        for (const auto& [axis, value] : workloads[i].axes) {
          rec->gauge("axis/" + axis).set(value);
        }
        recorders[i * n_policies + j] = rec;
      }
    }
  }
  OrderedProgress ordered(jobs.size(), progress);
  util::parallel_for(jobs.size(), [&](std::size_t t) {
    const auto [i, j] = jobs[t];
    RunOutcome& outcome = points[i].outcomes[j];
    const telemetry::ScopedRun scope(
        recorders.empty() ? nullptr : recorders[i * n_policies + j]);
    const telemetry::SpanTimer span(
        "policy_run", points[i].label + "/" + roster[j].name);
    outcome.metrics = readers[i] != nullptr
                          ? replay_file(*readers[i], roster[j], config)
                          : run_simulation(traces[i], roster[j], config);
    if (progress) {  // only pay for formatting when a sink is attached
      std::ostringstream os;
      os << "[" << points[i].label << "] " << roster[j].name << ": total "
         << outcome.metrics.total_j() / 1e3 << " kJ, "
         << outcome.metrics.disk_accesses << " disk accesses";
      ordered.emit(t, os.str());
    }
  });

  // Normalize against the baseline run's metrics, computed once above.
  for (auto& point : points) {
    point.baseline = point.outcomes[baseline_index].metrics;
    for (auto& outcome : point.outcomes) {
      outcome.normalized = normalize_energy(outcome.metrics, point.baseline);
    }
  }
  TELEM_EVENT(kSweep, "sweep_end", 0.0,
              {"runs", static_cast<double>(jobs.size())});
  return points;
}

std::vector<SweepPoint> run_sweep(
    const std::vector<std::pair<std::string, workload::SynthesizerConfig>>&
        workloads,
    const std::vector<PolicySpec>& roster, const EngineConfig& config,
    const std::function<void(const std::string&)>& progress) {
  std::vector<SweepWorkload> points;
  points.reserve(workloads.size());
  for (const auto& [label, workload] : workloads) {
    points.push_back(SweepWorkload{label, workload, {}, {}});
  }
  return run_sweep(points, roster, config, progress);
}

}  // namespace jpm::sim
