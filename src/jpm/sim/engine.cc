#include "jpm/sim/engine.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <stdexcept>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "jpm/cache/lru_cache.h"
#include "jpm/cache/page_table.h"
#include "jpm/cache/stack_distance.h"
#include "jpm/disk/disk_array.h"
#include "jpm/disk/multispeed.h"
#include "jpm/disk/storage.h"
#include "jpm/disk/timeout_policy.h"
#include "jpm/mem/bank_set.h"
#include "jpm/telemetry/registry.h"
#include "jpm/telemetry/telemetry.h"
#include "jpm/util/arena.h"
#include "jpm/util/check.h"
#include "jpm/workload/trace.h"

namespace jpm::sim {

struct Engine::Impl {
  PolicySpec policy;
  EngineConfig config;

  // Trace source: a live generator, an owned replay, or a borrowed immutable
  // Trace. The latter two both run through the SoA lane views below (the
  // ReplayTrace constructor converts its AoS events into `owned_trace`).
  std::unique_ptr<workload::TraceGenerator> generator;
  workload::Trace owned_trace;  // storage for the ReplayTrace constructor
  const double* ev_times = nullptr;
  const std::uint64_t* ev_pages = nullptr;
  const std::uint8_t* ev_flags = nullptr;
  std::size_t event_count = 0;
  double duration_s = 0.0;
  std::uint64_t total_pages = 0;

  std::unique_ptr<disk::TimeoutPolicy> timeout_policy;
  disk::DynamicTimeout* dynamic_timeout = nullptr;  // set for joint runs
  std::unique_ptr<disk::Storage> disk;
  // Bump arena backing the frame-node array and the tracker's Fenwick tree:
  // the replay hot path walks both, and arena placement keeps them in one
  // contiguous region instead of scattered heap blocks. Declared before its
  // users so it outlives them.
  util::Arena arena;
  // One page table shared by the LRU cache and (in joint runs) the
  // stack-distance tracker: the hot loop resolves each event's page with a
  // single probe and hands the entry to both. Declared before its users so
  // it outlives them.
  cache::PageTable page_table;
  std::unique_ptr<cache::LruCache> lru;
  mem::MemoryEnergyMeter meter;
  std::unique_ptr<mem::BankSet> banks;  // PD / DS / always-on static energy

  // Joint-method machinery.
  std::unique_ptr<cache::StackDistanceTracker> tracker;
  std::unique_ptr<core::PeriodStatsCollector> collector;
  std::unique_ptr<core::JointPowerManager> manager;
  std::uint64_t current_units = 0;

  RunMetrics metrics;

  // Telemetry stream bound to this thread when the run starts; all pointers
  // stay null when no session is active, so the hot path costs one branch.
  telemetry::RunRecorder* telem = nullptr;
  telemetry::TableRecorder* telem_periods = nullptr;
  BucketHistogram* telem_idle = nullptr;
  BucketHistogram* telem_latency = nullptr;
  BucketHistogram* telem_spinup = nullptr;
  double telem_prev_energy_j = 0.0;

  double next_flush = 0.0;  // next background writeback tick (0 = disabled)

  // Reused across period boundaries and bank disables so the hot loop does
  // not allocate a fresh vector per event.
  std::vector<cache::PageId> dirty_scratch;

  // Per-period measured quantities (Fig. 9 and period records).
  double next_boundary = 0.0;
  double period_start = 0.0;
  std::uint64_t period_cache_accesses = 0;
  std::uint64_t period_disk_accesses = 0;
  double period_gap_sum = 0.0;
  std::uint64_t period_gap_count = 0;
  double period_busy_start_s = 0.0;
  std::uint64_t period_delayed_requests = 0;
  double last_disk_finish;
  bool ran = false;
  // Push-mode state: live engines start lazily at the first push and end at
  // finish(); forced fallback / shed counts come from the stream overload
  // policies (see engine.h).
  bool live = false;
  bool started = false;
  bool finished = false;
  bool forced_fallback = false;
  std::uint64_t period_shed_events = 0;

  // Cumulative totals at the warm-up boundary, subtracted at the end so
  // reported metrics cover only the measured window.
  struct Snapshot {
    bool taken = false;
    mem::MemoryEnergyBreakdown mem;
    double bank_static_j = 0.0;
    disk::DiskEnergyBreakdown disk;
    double busy_s = 0.0;
    std::uint64_t shutdowns = 0;
    std::uint64_t cache_accesses = 0;
    std::uint64_t disk_accesses = 0;
    std::uint64_t disk_writes = 0;
    std::uint64_t readahead = 0;
    std::uint64_t long_latency = 0;
    std::uint64_t spin_ups = 0;
    double latency_s = 0.0;
  } snapshot;

  Impl(const workload::SynthesizerConfig& wl, const PolicySpec& spec,
       const EngineConfig& cfg)
      : policy(spec), config(cfg),
        generator(std::make_unique<workload::TraceGenerator>(wl)),
        meter(cfg.joint.mem, 0, 0.0), last_disk_finish(0.0) {
    duration_s = wl.duration_s;
    total_pages = generator->total_pages();
    init(wl.page_bytes);
  }

  Impl(ReplayTrace trace, const PolicySpec& spec, const EngineConfig& cfg)
      : policy(spec), config(cfg), meter(cfg.joint.mem, 0, 0.0),
        last_disk_finish(0.0) {
    duration_s = trace.duration_s;
    total_pages = trace.total_pages;
    owned_trace = workload::trace_from_events(trace.events, trace.page_bytes,
                                              trace.total_pages,
                                              trace.duration_s);
    attach_trace(owned_trace);
    init(trace.page_bytes);
  }

  Impl(const workload::Trace& trace, const PolicySpec& spec,
       const EngineConfig& cfg)
      : policy(spec), config(cfg), meter(cfg.joint.mem, 0, 0.0),
        last_disk_finish(0.0) {
    duration_s = trace.duration_s;
    total_pages = trace.total_pages;
    attach_trace(trace);
    init(trace.page_bytes);
  }

  Impl(const LiveSource& source, const PolicySpec& spec,
       const EngineConfig& cfg)
      : policy(spec), config(cfg), meter(cfg.joint.mem, 0, 0.0),
        last_disk_finish(0.0) {
    JPM_CHECK_MSG(source.total_pages > 0,
                  "a live source must declare its data-set size");
    live = true;
    duration_s = source.duration_hint_s;
    total_pages = source.total_pages;
    init(source.page_bytes);
  }

  // Validates a trace's event lanes and adopts them as the run's source.
  // Fills duration and data-set size when the caller left them derived (0).
  void attach_trace(const workload::Trace& tr) {
    JPM_CHECK_MSG(!tr.empty(), "replay trace is empty");
    // Branchless validation scan (accumulate, check once): the per-element
    // CHECK's early-exit branch kept the compiler from vectorizing what is
    // otherwise a pure max/ordered reduction over the whole trace — and this
    // scan runs per replay, which a sweep repeats per policy.
    const double* times = tr.times.data();
    const std::uint64_t* pages = tr.pages.data();
    const std::size_t count = tr.size();
    // >= (not !<) so a NaN timestamp fails the scan exactly as the
    // per-element CHECK did.
    bool sorted = times[0] >= 0.0;
    std::size_t i = 1;
#if defined(__SSE2__)
    // Two compares per vector op; a NaN makes cmple false, clearing its ok
    // bit, so the NaN behaviour above is preserved.
    __m128d ok = _mm_castsi128_pd(_mm_set1_epi32(-1));
    for (; i + 2 <= count; i += 2) {
      ok = _mm_and_pd(ok, _mm_cmple_pd(_mm_loadu_pd(times + i - 1),
                                       _mm_loadu_pd(times + i)));
    }
    sorted &= _mm_movemask_pd(ok) == 3;
#endif
    for (; i < count; ++i) sorted &= times[i] >= times[i - 1];
    JPM_CHECK_MSG(sorted, "replay trace must be time-sorted");
    // Four independent accumulators: a single max is a loop-carried chain
    // (SSE2 has no packed 64-bit max to lean on).
    std::uint64_t m0 = pages[0], m1 = 0, m2 = 0, m3 = 0;
    std::size_t j = 0;
    for (; j + 4 <= count; j += 4) {
      m0 = std::max(m0, pages[j]);
      m1 = std::max(m1, pages[j + 1]);
      m2 = std::max(m2, pages[j + 2]);
      m3 = std::max(m3, pages[j + 3]);
    }
    for (; j < count; ++j) m0 = std::max(m0, pages[j]);
    const std::uint64_t max_page = std::max(std::max(m0, m1), std::max(m2, m3));
    const double prev = tr.times.back();
    // Events may trail slightly past the declared duration (the synthesizer
    // admits arrivals up to it and their pages follow); like the generator
    // path, the run still closes its books at the declared duration.
    if (duration_s == 0.0) duration_s = prev;
    if (total_pages == 0) total_pages = max_page + 1;
    JPM_CHECK_MSG(max_page < total_pages,
                  "trace pages exceed the declared data-set size");
    ev_times = tr.times.data();
    ev_pages = tr.pages.data();
    ev_flags = tr.flags.data();
    event_count = tr.size();
  }

  // Rejects configurations that would silently corrupt the run. Uses
  // std::invalid_argument (bad input), not JPM_CHECK (internal invariant).
  void validate_config() const {
    const auto bad = [](const std::string& why) {
      throw std::invalid_argument("invalid EngineConfig: " + why);
    };
    const auto& jc = config.joint;
    if (config.disk_count == 0) bad("disk_count must be at least 1");
    if (config.stripe_bytes == 0) bad("stripe_bytes must be positive");
    if (jc.page_bytes == 0) bad("page_bytes must be positive");
    if (!(jc.period_s > 0.0) || !std::isfinite(jc.period_s)) {
      bad("joint.period_s must be positive and finite");
    }
    if (!(jc.window_s > 0.0) || !std::isfinite(jc.window_s)) {
      bad("joint.window_s must be positive and finite");
    }
    if (jc.util_limit < 0.0 || !std::isfinite(jc.util_limit)) {
      bad("joint.util_limit must be nonnegative and finite");
    }
    if (jc.delay_limit < 0.0 || !std::isfinite(jc.delay_limit)) {
      bad("joint.delay_limit must be nonnegative and finite");
    }
    if (config.warm_up_s < 0.0) bad("warm_up_s must be nonnegative");
    if (config.flush_interval_s < 0.0) {
      bad("flush_interval_s must be nonnegative (0 disables)");
    }
    if (config.long_latency_threshold_s < 0.0) {
      bad("long_latency_threshold_s must be nonnegative");
    }
    if (config.batch_size == 0 || config.batch_size > 65536) {
      bad("batch_size must be in [1, 65536]");
    }
    jc.disk.validate();
    fault::validate(config.fault);
  }

  void init(std::uint64_t page_bytes) {
    config.joint.page_bytes = page_bytes;
    validate_config();
    const auto& jc = config.joint;
    JPM_CHECK_MSG(jc.unit_bytes % jc.page_bytes == 0,
                  "enumeration unit must be a whole number of pages");
    JPM_CHECK_MSG(jc.physical_bytes % jc.unit_bytes == 0,
                  "physical memory must be a whole number of units");
    JPM_CHECK_MSG(jc.mem.bank_bytes % jc.page_bytes == 0,
                  "bank must be a whole number of pages");
    JPM_CHECK_MSG(jc.physical_bytes % jc.mem.bank_bytes == 0,
                  "physical memory must be a whole number of banks");

    // Disk timeout policy.
    switch (policy.disk) {
      case DiskPolicyKind::kTwoCompetitive:
        timeout_policy =
            std::make_unique<disk::FixedTimeout>(jc.disk.break_even_s());
        break;
      case DiskPolicyKind::kAdaptive:
        timeout_policy = std::make_unique<disk::AdaptiveTimeout>();
        break;
      case DiskPolicyKind::kPredictive:
        timeout_policy =
            std::make_unique<disk::PredictiveTimeout>(jc.disk.break_even_s());
        break;
      case DiskPolicyKind::kAlwaysOn:
        timeout_policy = std::make_unique<disk::NeverTimeout>();
        break;
      case DiskPolicyKind::kJoint: {
        auto dynamic =
            std::make_unique<disk::DynamicTimeout>(jc.disk.break_even_s());
        dynamic_timeout = dynamic.get();
        timeout_policy = std::move(dynamic);
        break;
      }
    }
    // Storage backend: multi-speed disk, single spin-down disk, or a
    // striped array with per-disk policy instances.
    if (policy.multi_speed) {
      JPM_CHECK_MSG(config.disk_count == 1,
                    "multi-speed arrays are not modeled");
      disk = std::make_unique<disk::MultiSpeedDisk>(
          disk::drpm_params(jc.disk), 0.0);
    } else if (config.disk_count == 1) {
      if (config.fault.disk_faults_active()) {
        disk = std::make_unique<disk::SingleDiskStorage>(
            jc.disk, timeout_policy.get(), 0.0, config.fault);
      } else {
        disk = std::make_unique<disk::SingleDiskStorage>(
            jc.disk, timeout_policy.get(), 0.0);
      }
    } else {
      disk::DiskArrayConfig array_cfg;
      array_cfg.disk_count = config.disk_count;
      array_cfg.stripe_bytes = config.stripe_bytes;
      array_cfg.page_bytes = jc.page_bytes;
      array_cfg.params = jc.disk;
      array_cfg.fault = config.fault;
      const auto factory = [this, &jc]() -> std::unique_ptr<disk::TimeoutPolicy> {
        switch (policy.disk) {
          case DiskPolicyKind::kTwoCompetitive:
            return std::make_unique<disk::FixedTimeout>(jc.disk.break_even_s());
          case DiskPolicyKind::kAdaptive:
            return std::make_unique<disk::AdaptiveTimeout>();
          case DiskPolicyKind::kPredictive:
            return std::make_unique<disk::PredictiveTimeout>(
                jc.disk.break_even_s());
          case DiskPolicyKind::kAlwaysOn:
            return std::make_unique<disk::NeverTimeout>();
          case DiskPolicyKind::kJoint:
            return std::make_unique<disk::SharedTimeout>(dynamic_timeout);
        }
        JPM_CHECK_MSG(false, "unknown disk policy kind");
        return nullptr;
      };
      disk = std::make_unique<disk::DiskArray>(array_cfg, factory, 0.0);
    }

    // Cache sized to physical memory; logical capacity per the method.
    const std::uint64_t total_frames = jc.physical_bytes / jc.page_bytes;
    const std::uint64_t frames_per_bank = jc.mem.bank_bytes / jc.page_bytes;
    std::uint64_t capacity_frames = total_frames;
    if (policy.mem == MemPolicyKind::kFixed) {
      JPM_CHECK(policy.fixed_bytes > 0 &&
                policy.fixed_bytes <= jc.physical_bytes);
      capacity_frames = policy.fixed_bytes / jc.page_bytes;
    }
    cache::LruCacheOptions lru_opts{total_frames, frames_per_bank,
                                    capacity_frames};
    lru_opts.arena = &arena;
    lru = std::make_unique<cache::LruCache>(lru_opts, &page_table);

    // Memory static-energy accounting.
    const auto bank_count =
        static_cast<std::uint32_t>(jc.physical_bytes / jc.mem.bank_bytes);
    switch (policy.mem) {
      case MemPolicyKind::kFixed:
        meter.set_size(policy.fixed_bytes, 0.0);
        break;
      case MemPolicyKind::kJoint:
        meter.set_size(jc.physical_bytes, 0.0);
        break;
      case MemPolicyKind::kNapAll:
        banks = std::make_unique<mem::BankSet>(
            bank_count, jc.mem, mem::BankPolicy::kNapOnly, 0.0);
        break;
      case MemPolicyKind::kPowerDown:
        banks = std::make_unique<mem::BankSet>(
            bank_count, jc.mem, mem::BankPolicy::kPowerDown, 0.0);
        break;
      case MemPolicyKind::kDisable:
        banks = std::make_unique<mem::BankSet>(
            bank_count, jc.mem, mem::BankPolicy::kDisable, 0.0);
        break;
    }

    if (policy.joint_disk() || policy.joint_memory()) {
      JPM_CHECK_MSG(policy.joint_disk() && policy.joint_memory(),
                    "joint disk and joint memory policies must be used "
                    "together");
      tracker =
          std::make_unique<cache::StackDistanceTracker>(&page_table, &arena);
      // The closed-loop guard only engages through an enabled fault plan;
      // otherwise the manager keeps the paper's open-loop behavior.
      const fault::ManagerGuardConfig guard =
          config.fault.enabled ? config.fault.guard
                               : fault::ManagerGuardConfig{};
      manager = std::make_unique<core::JointPowerManager>(jc, guard);
      collector = std::make_unique<core::PeriodStatsCollector>(
          jc.unit_frames(), jc.max_units(), 0.0);
      // Replay runs know the event count up front: pre-size the first
      // period's lanes so the per-access push never grows mid-run (the
      // growth ramp re-paid on every run dominated collector time).
      if (event_count > 0) collector->reserve_events(event_count);
      current_units = manager->initial_memory_units();
      dynamic_timeout->set_timeout(manager->initial_timeout_s());
    } else {
      current_units = lru->capacity() / jc.unit_frames();
    }
    next_boundary = jc.period_s;
    next_flush = config.flush_interval_s;
    metrics.policy_name = policy.name;

    if (config.prefill_cache) prefill();
  }

  // Writes one dirty page back to disk. Background traffic: no user-visible
  // latency, but it occupies and wakes the disk like any other access.
  void write_back_page(double t, cache::PageId p) {
    const auto res = disk->read(t, p, config.joint.page_bytes);
    ++metrics.disk_writes;
    last_disk_finish = res.finish_s;
  }

  // Writes the given dirty pages back to disk (ascending page order keeps
  // most of a flush burst sequential).
  void write_back(double t, const std::vector<cache::PageId>& pages) {
    for (cache::PageId p : pages) write_back_page(t, p);
  }

  void process_flushes_until(double t) {
    if (config.flush_interval_s <= 0.0) return;
    while (next_flush <= t) {
      lru->take_dirty_pages(&dirty_scratch);
      write_back(next_flush, dirty_scratch);
      next_flush += config.flush_interval_s;
    }
  }

  // Streams every data-set page through the cache AND the extended LRU list
  // before t = 0: the measured run starts from a warm server. Prefilling the
  // tracker keeps prediction consistent with the warm cache: a page's first
  // in-trace access is a re-access at its (prefill-order) stack depth, which
  // is exactly where the resident copy sits — so the miss curve correctly
  // credits large memories with serving first touches from memory and
  // charges small ones with evicting them.
  void prefill() {
    const std::uint64_t pages = total_pages;
    for (std::uint64_t p = 0; p < pages; ++p) {
      cache::PageEntry* entry = page_table.find_or_insert(p);
      if (tracker) tracker->access_at(*entry);
      if (entry->frame != cache::kNoFrame) {
        lru->touch(entry->frame);
      } else {
        lru->insert(p);
      }
    }
  }

  void take_snapshot(double t) {
    JPM_CHECK(!snapshot.taken);
    snapshot.taken = true;
    meter.finalize(t);
    snapshot.mem = meter.breakdown();
    if (banks) {
      banks->finalize(t);
      snapshot.bank_static_j = banks->static_energy_j();
    }
    snapshot.disk = disk->energy_through(t);
    snapshot.busy_s = disk->busy_time_s();
    snapshot.shutdowns = disk->shutdowns();
    snapshot.cache_accesses = metrics.cache_accesses;
    snapshot.disk_accesses = metrics.disk_accesses;
    snapshot.disk_writes = metrics.disk_writes;
    snapshot.readahead = metrics.readahead_fetches;
    snapshot.long_latency = metrics.long_latency_count;
    snapshot.spin_ups = metrics.spin_ups;
    snapshot.latency_s = metrics.total_latency_s;
  }

  // ---- period bookkeeping -------------------------------------------------

  // Cumulative realized energy through t (memory + disk + banks). Only
  // called with telemetry enabled: the extra mid-run integrations can move
  // the final energy sums by an ulp, which is invisible in reported output
  // but would break the disabled-mode byte-identical guarantee.
  double telem_energy_through(double t) {
    meter.finalize(t);
    double j = meter.breakdown().total_j() + disk->energy_through(t).total_j();
    if (banks) {
      banks->finalize(t);
      j += banks->static_energy_j();
    }
    return j;
  }

  void close_period(double boundary) {
    if (telem_periods != nullptr) {
      const double realized_j =
          telem_energy_through(boundary) - telem_prev_energy_j;
      telem_prev_energy_j += realized_j;
      const double mean_idle =
          period_gap_count == 0
              ? 0.0
              : period_gap_sum / static_cast<double>(period_gap_count);
      telem_periods->add_row(
          {period_start, boundary,
           static_cast<double>(period_cache_accesses),
           static_cast<double>(period_disk_accesses), mean_idle,
           static_cast<double>(current_units), timeout_policy->timeout_s(),
           disk->busy_time_s() - period_busy_start_s,
           static_cast<double>(period_delayed_requests), realized_j});
      TELEM_EVENT(kEngine, "period_close", boundary,
                  {"disk_accesses", static_cast<double>(period_disk_accesses)},
                  {"realized_j", realized_j});
    }
    if (config.record_periods) {
      PeriodRecord rec;
      rec.start_s = period_start;
      rec.end_s = boundary;
      rec.cache_accesses = period_cache_accesses;
      rec.disk_accesses = period_disk_accesses;
      rec.mean_idle_s = period_gap_count == 0
                            ? 0.0
                            : period_gap_sum /
                                  static_cast<double>(period_gap_count);
      rec.memory_units = current_units;
      rec.timeout_s = timeout_policy->timeout_s();
      rec.busy_s = disk->busy_time_s() - period_busy_start_s;
      rec.delayed_requests = period_delayed_requests;
      rec.shed_events = period_shed_events;
      rec.degraded = period_shed_events > 0 || forced_fallback;
      metrics.periods.push_back(rec);
    }
    period_start = boundary;
    period_cache_accesses = 0;
    period_disk_accesses = 0;
    period_gap_sum = 0.0;
    period_gap_count = 0;
    period_busy_start_s = disk->busy_time_s();
    period_delayed_requests = 0;
    period_shed_events = 0;
  }

  void handle_boundary(double boundary) {
    disk->advance(boundary);
    if (manager) {
      core::PeriodStats stats = collector->harvest(boundary);
      const core::JointDecision& d = manager->on_period_end(stats);
      collector->recycle(std::move(stats));
      const std::uint64_t frames =
          d.memory_units * config.joint.unit_frames();
      dirty_scratch.clear();
      lru->set_capacity(std::max<std::uint64_t>(frames, 1), &dirty_scratch);
      write_back(boundary, dirty_scratch);
      meter.set_size(d.memory_bytes, boundary);
      dynamic_timeout->set_timeout(d.timeout_s);
      current_units = d.memory_units;
      TELEM_EVENT(kManager, "decision_applied", boundary,
                  {"memory_units", static_cast<double>(d.memory_units)},
                  {"timeout_s", d.timeout_s});
      if (telem != nullptr) {
        telem->gauge("memory_units")
            .set(static_cast<double>(d.memory_units));
      }
    }
    close_period(boundary);
  }

  void process_boundaries_until(double t) {
    while (next_boundary <= t) {
      handle_boundary(next_boundary);
      next_boundary += config.joint.period_s;
    }
  }

  // ---- main loop ----------------------------------------------------------

  // Applies one event's cache/disk work given its already-resolved page
  // entry. The caller has handled period boundaries, flush ticks, bank
  // expiries, and the warm-up snapshot for time t; the entry pointer is
  // valid for the duration of the call. Force-inlined: the resident-hit
  // body below is the per-event steady state of a replay, and inlining it
  // into the batch walk lets consecutive events' tree descents and LRU
  // splices schedule around each other; the miss tail stays out of line so
  // the hot loop's code footprint stays small.
  JPM_FORCE_INLINE void apply_access(double t, std::uint64_t page,
                                     bool is_write, cache::PageEntry* entry,
                                     bool telem_on) {
    // A telemetry session records spin-down markers the moment a timeout
    // expires; keep the classic per-event advance in that mode so the event
    // stream orders exactly as before (session-wide, not per-run: TELEM_EVENT
    // fires even on threads outside any ScopedRun). Metrics never need it:
    // spin-downs are stamped at their expiry time and every state read
    // (read(), energy_through(), finalize()) advances internally first.
    // `telem_on` is the caller's read of telemetry::enabled() — an atomic
    // load the compiler cannot hoist out of the batch walk itself.
    if (telem_on) disk->advance(t);
    if (tracker) {
      const std::uint64_t depth = tracker->access_at(*entry);
      // Writes never become disk reads, so they stay out of the miss
      // curve and idle prediction; they still age the LRU stack above.
      if (!is_write) collector->on_access(t, depth);
    }
    // Note: cache_accesses / period_cache_accesses are bumped by the caller
    // (per event in step_event, once per batch in feed — batches provably
    // cross no boundary, and the counters are only read at boundaries and
    // at the end of a run, so the batched bump is observationally exact).

    if (entry->frame != cache::kNoFrame) {
      const auto outcome = lru->touch(entry->frame);
      meter.on_transfer(config.joint.page_bytes);
      if (is_write) lru->mark_dirty_frame(entry->frame);
      if (banks) banks->touch(outcome.bank, t);
      return;
    }

    apply_access_miss(t, page, is_write);
  }

  // The non-resident tail of apply_access: write-allocate or disk read plus
  // install, readahead, and the latency/idle bookkeeping that only miss
  // events carry.
  void apply_access_miss(double t, std::uint64_t page, bool is_write) {
    const std::uint64_t page_bytes = config.joint.page_bytes;
    if (is_write) {
      // Write-allocate without fetch: the whole page is overwritten, so no
      // disk read happens now; the page becomes dirty for a later flush.
      const auto placed = lru->insert(page);
      if (placed.evicted && placed.evicted_dirty) {
        write_back_page(t, placed.evicted_page);
      }
      lru->mark_dirty_frame(placed.frame);
      meter.on_transfer(page_bytes);
      if (banks) banks->touch(placed.bank, t);
      return;
    }

    // Read miss: fetch the page from disk, then install it.
    const auto res = disk->read(t, page, page_bytes);
    ++metrics.disk_accesses;
    ++period_disk_accesses;
    if (res.triggered_spin_up) {
      ++metrics.spin_ups;
      ++period_delayed_requests;
    }
    metrics.total_latency_s += res.latency_s;
    if (res.latency_s > config.long_latency_threshold_s) {
      ++metrics.long_latency_count;
    }
    if (telem != nullptr) {
      telem_latency->add(res.latency_s);
      if (res.triggered_spin_up) telem_spinup->add(res.latency_s);
    }
    if (collector) {
      collector->on_disk_access(res.finish_s - res.start_s,
                                /*delayed=*/res.triggered_spin_up);
    }

    const double gap = t - last_disk_finish;
    if (telem != nullptr && gap > 0.0) telem_idle->add(gap);
    if (gap >= config.joint.window_s) {
      period_gap_sum += gap;
      ++period_gap_count;
    }
    last_disk_finish = res.finish_s;

    const auto placed = lru->insert(page);
    if (placed.evicted && placed.evicted_dirty) {
      write_back_page(t, placed.evicted_page);
    }
    meter.on_transfer(2 * page_bytes);  // fill + serve
    if (banks) banks->touch(placed.bank, t);

    // Sequential readahead rides the same disk operation.
    for (std::uint32_t k = 1; k <= config.readahead_pages; ++k) {
      const std::uint64_t next_page = page + k;
      if (next_page >= total_pages) break;
      if (lru->contains(next_page)) break;  // run already cached
      const auto ra = disk->read(t, next_page, page_bytes);
      ++metrics.readahead_fetches;
      last_disk_finish = ra.finish_s;
      const auto ra_placed = lru->insert(next_page);
      if (ra_placed.evicted && ra_placed.evicted_dirty) {
        write_back_page(t, ra_placed.evicted_page);
      }
      meter.on_transfer(page_bytes);
      if (banks) banks->touch(ra_placed.bank, t);
    }
  }

  // The full per-event path: timer bookkeeping, then a single page-table
  // probe resolves the page for every consumer of the event — the
  // stack-distance update reads/writes the entry's `slot` half and the
  // residency check reads its `frame` half. This is the generator path's
  // loop body and the batched replay's fallback for events at or past a
  // timer edge.
  void step_event(double t, std::uint64_t page, bool is_write) {
    advance_timers(t);
    ++metrics.cache_accesses;
    ++period_cache_accesses;
    apply_access(t, page, is_write, page_table.find_or_insert(page),
                 telemetry::enabled());
  }

  // The timer half of step_event: warm-up snapshot, period boundaries,
  // flush ticks, and bank expiries through time t. Also the watchdog's
  // forced period close (advance_to), which runs it without an access.
  void advance_timers(double t) {
    if (!snapshot.taken && t >= config.warm_up_s) {
      process_boundaries_until(config.warm_up_s);
      take_snapshot(config.warm_up_s);
    }
    process_boundaries_until(t);
    process_flushes_until(t);
    if (banks) {
      for (const auto& d : banks->take_due_disables(t)) {
        dirty_scratch.clear();
        lru->invalidate_bank(d.bank, &dirty_scratch);
        write_back(t, dirty_scratch);
      }
    }
  }

  // Batched event feed — the shared core of trace replay and the streaming
  // daemon (which pushes ring-drained SoA chunks through the same code).
  // Pulls events in runs of up to batch_size that provably cross no period
  // boundary, flush tick, or warm-up edge, so per-event timer checks vanish
  // from the hot loop. In fused joint runs the batch's page-table probes are
  // all resolved up front (entry pointers stay valid: eviction never erases
  // an entry whose tracker half is live, and compaction rewrites slots
  // without touching the map), then the apply pass walks the events in
  // software-pipelined lockstep: while event k's counter-tree descent and
  // LRU splice execute, the lines event k+kPipelineAhead will touch are
  // being prefetched. Keeping the prefetch a fixed small distance ahead —
  // instead of hinting the whole batch up front — bounds the in-flight
  // footprint to a few cache lines per lane, so hints are still resident
  // when their event arrives (the whole-batch variant evicted its own hints
  // at batch 256 and ran *slower* than batch 1; see DESIGN.md). The
  // non-fused mode re-probes per event, since eviction without a tracker
  // erases entries and relocates their neighbors, but pipelines its probe
  // prefetches the same way. Bit-identical to the per-event loop for every
  // batch size and every chunking of the event stream into feed() calls.
  void feed(const double* ev_times, const std::uint64_t* ev_pages,
            const std::uint8_t* ev_flags, std::size_t n) {
    // Far enough that a hint's line arrives from L2/L3 before its event,
    // close enough that at most ~4 lanes x ~4 lines are in flight.
    constexpr std::size_t kPipelineAhead = 4;
    // Hint lanes only pay for themselves when the probe targets outrun the
    // cache. The page table is the proxy for the whole per-page working set
    // (tracker tree and LRU nodes scale with the same page count): under
    // 64Ki slots (~1 MiB of table) everything is L2-resident and each hint
    // is ~10 wasted instructions per event. Purely advisory, so gating by
    // current capacity (re-read per batch; inserts can grow it) cannot
    // change results.
    constexpr std::size_t kHintMinTableSlots = std::size_t{64} * 1024;
    const std::size_t batch = config.batch_size;
    // Bank policies carry their own per-event timer (pending disables), so
    // they keep the classic loop.
    const bool batching = batch > 1 && banks == nullptr;
    const bool ptr_mode = tracker != nullptr && config.readahead_pages == 0;
    std::vector<cache::PageEntry*> entries;
    if (batching && ptr_mode) entries.resize(batch);

    std::size_t i = 0;
    while (i < n) {
      if (!batching) {
        step_event(ev_times[i], ev_pages[i],
                   (ev_flags[i] & workload::kTraceFlagWrite) != 0);
        ++i;
        continue;
      }
      // Next time at which per-event bookkeeping must run. Events strictly
      // before it cannot trip a boundary (<= fires), a flush (<= fires), or
      // the warm-up snapshot (>= fires).
      double limit = next_boundary;
      if (config.flush_interval_s > 0.0 && next_flush < limit) {
        limit = next_flush;
      }
      if (!snapshot.taken && config.warm_up_s < limit) {
        limit = config.warm_up_s;
      }
      if (ev_times[i] >= limit) {
        step_event(ev_times[i], ev_pages[i],
                   (ev_flags[i] & workload::kTraceFlagWrite) != 0);
        ++i;
        continue;
      }
      std::size_t end = i + 1;
      const std::size_t cap = std::min(n, i + batch);
      while (end < cap && ev_times[end] < limit) ++end;
      const std::size_t m = end - i;
      // Batched bump of the two per-event access counters (see the note in
      // apply_access): no boundary, flush, or snapshot can fire inside the
      // batch, and nothing else reads them mid-event.
      metrics.cache_accesses += m;
      period_cache_accesses += m;
      // One relaxed atomic load per batch instead of per event. Sessions
      // start before a run and stop after it; a mid-batch flip (another
      // thread's start()/stop() racing a relaxed load) has no ordering
      // guarantee to preserve in the first place.
      const bool telem_on = telemetry::enabled();

      const bool hint = page_table.capacity() >= kHintMinTableSlots;
      if (ptr_mode) {
        // Phase A: resolve every lane's entry, keeping the probe prefetch a
        // fixed distance ahead so the home slot's line is in flight while
        // earlier lanes probe.
        const std::size_t table_cap = page_table.capacity();
        if (hint) {
          for (std::size_t k = 0; k < m && k < kPipelineAhead; ++k) {
            page_table.prefetch(ev_pages[i + k]);
          }
          for (std::size_t k = 0; k < m; ++k) {
            if (k + kPipelineAhead < m) {
              page_table.prefetch(ev_pages[i + k + kPipelineAhead]);
            }
            entries[k] = page_table.find_or_insert(ev_pages[i + k]);
          }
        } else {
          for (std::size_t k = 0; k < m; ++k) {
            entries[k] = page_table.find_or_insert(ev_pages[i + k]);
          }
        }
        if (page_table.capacity() != table_cap) {
          // An insert rehashed the table mid-batch; re-resolve every lane
          // (find never mutates, so these pointers are final).
          for (std::size_t k = 0; k < m; ++k) {
            entries[k] = page_table.find(ev_pages[i + k]);
          }
        }
        // Phase B: the lockstep walk. Event k's work overlaps the line
        // fetches for event k+kPipelineAhead — its counter-tree leaf/node,
        // the predicted append slot (kPipelineAhead appends from now), and,
        // for resident pages, the LRU list node.
        if (hint) {
          for (std::size_t k = 0; k < m && k < kPipelineAhead; ++k) {
            tracker->prefetch_access(*entries[k], k);
            if (entries[k]->frame != cache::kNoFrame) {
              lru->prefetch_frame(entries[k]->frame);
            }
          }
          for (std::size_t k = 0; k < m; ++k) {
            if (k + kPipelineAhead < m) {
              cache::PageEntry* ahead = entries[k + kPipelineAhead];
              tracker->prefetch_access(*ahead, kPipelineAhead);
              if (ahead->frame != cache::kNoFrame) {
                lru->prefetch_frame(ahead->frame);
              }
            }
            apply_access(ev_times[i + k], ev_pages[i + k],
                         (ev_flags[i + k] & workload::kTraceFlagWrite) != 0,
                         entries[k], telem_on);
          }
        } else {
          for (std::size_t k = 0; k < m; ++k) {
            apply_access(ev_times[i + k], ev_pages[i + k],
                         (ev_flags[i + k] & workload::kTraceFlagWrite) != 0,
                         entries[k], telem_on);
          }
        }
      } else {
        for (std::size_t k = 0; k < m && k < kPipelineAhead; ++k) {
          if (hint) page_table.prefetch(ev_pages[i + k]);
        }
        for (std::size_t k = 0; k < m; ++k) {
          if (hint && k + kPipelineAhead < m) {
            page_table.prefetch(ev_pages[i + k + kPipelineAhead]);
          }
          const std::uint64_t page = ev_pages[i + k];
          apply_access(ev_times[i + k], page,
                       (ev_flags[i + k] & workload::kTraceFlagWrite) != 0,
                       page_table.find_or_insert(page), telem_on);
        }
      }
      i = end;
    }
  }

  // Binds telemetry and emits the run_begin marker. Idempotent: run() does
  // it up front; push-mode engines do it lazily at the first push.
  void begin_once() {
    if (started) return;
    started = true;
    telem = telemetry::current_run();
    if (telem != nullptr) {
      telem_periods = &telem->table(
          "periods",
          {"start_s", "end_s", "cache_accesses", "disk_accesses",
           "mean_idle_s", "memory_units", "timeout_s", "busy_s",
           "delayed_requests", "realized_j"});
      telem_idle =
          &telem->histogram("idle_interval_s", telemetry::buckets::idle_seconds());
      telem_latency = &telem->histogram("read_latency_s",
                                        telemetry::buckets::latency_seconds());
      telem_spinup = &telem->histogram("spinup_wait_s",
                                       telemetry::buckets::spinup_seconds());
      TELEM_EVENT(kEngine, "run_begin", 0.0, {"duration_s", duration_s},
                  {"warm_up_s", config.warm_up_s},
                  {"disk_count", static_cast<double>(config.disk_count)});
    }
  }

  RunMetrics run() {
    JPM_CHECK_MSG(!ran && !finished, "Engine::run is single-shot");
    JPM_CHECK_MSG(!live, "live engines end with finish(), not run()");
    ran = true;
    begin_once();

    if (generator) {
      while (auto event = generator->next()) {
        step_event(event->time_s, event->page, event->is_write);
      }
    } else {
      feed(ev_times, ev_pages, ev_flags, event_count);
    }

    return finish_run(duration_s);
  }

  // Close out the run at `end`: final boundaries and flushes, the shutdown
  // writeback, the last period, warm-up subtraction, and the metric totals.
  RunMetrics finish_run(double end) {
    finished = true;
    JPM_CHECK_MSG(config.warm_up_s < end,
                  "warm-up must be shorter than the run");
    if (!snapshot.taken) {
      process_boundaries_until(config.warm_up_s);
      take_snapshot(config.warm_up_s);
    }
    process_boundaries_until(end);
    process_flushes_until(end);
    // Shutdown flush: no dirty page outlives the run.
    lru->take_dirty_pages(&dirty_scratch);
    write_back(end, dirty_scratch);
    if (period_start < end) close_period(end);
    disk->finalize(end);
    meter.finalize(end);
    if (banks) banks->finalize(end);

    metrics.duration_s = end - config.warm_up_s;
    metrics.spindle_count = disk->spindle_count();
    metrics.disk_energy = disk->energy();
    metrics.mem_energy = meter.breakdown();
    if (banks) metrics.mem_energy.static_j += banks->static_energy_j();
    metrics.disk_busy_s = disk->busy_time_s();
    metrics.disk_shutdowns = disk->shutdowns();
    // Reliability covers the whole run (warm-up included): a degraded
    // spindle stays degraded across the warm-up boundary, so subtracting a
    // snapshot would misstate the counters.
    metrics.reliability = disk->reliability();
    if (manager) metrics.reliability.merge(manager->reliability());

    // Subtract the warm-up window.
    metrics.mem_energy.static_j -=
        snapshot.mem.static_j + snapshot.bank_static_j;
    metrics.mem_energy.dynamic_j -= snapshot.mem.dynamic_j;
    metrics.disk_energy.standby_base_j -= snapshot.disk.standby_base_j;
    metrics.disk_energy.static_j -= snapshot.disk.static_j;
    metrics.disk_energy.transition_j -= snapshot.disk.transition_j;
    metrics.disk_energy.dynamic_j -= snapshot.disk.dynamic_j;
    metrics.disk_busy_s -= snapshot.busy_s;
    metrics.disk_shutdowns -= snapshot.shutdowns;
    metrics.cache_accesses -= snapshot.cache_accesses;
    metrics.disk_accesses -= snapshot.disk_accesses;
    metrics.disk_writes -= snapshot.disk_writes;
    metrics.readahead_fetches -= snapshot.readahead;
    metrics.long_latency_count -= snapshot.long_latency;
    metrics.spin_ups -= snapshot.spin_ups;
    metrics.total_latency_s -= snapshot.latency_s;

    if (telem != nullptr) {
      // Measured-window totals, after warm-up subtraction.
      telem->counter("cache_accesses").add(metrics.cache_accesses);
      telem->counter("disk_accesses").add(metrics.disk_accesses);
      telem->counter("disk_writes").add(metrics.disk_writes);
      telem->counter("spin_ups").add(metrics.spin_ups);
      telem->counter("disk_shutdowns").add(metrics.disk_shutdowns);
      telem->counter("long_latency").add(metrics.long_latency_count);
      TELEM_EVENT(kEngine, "run_end", end,
                  {"mem_j", metrics.mem_energy.total_j()},
                  {"disk_j", metrics.disk_energy.total_j()},
                  {"total_latency_s", metrics.total_latency_s});
    }
    return metrics;
  }

  // ---- push-mode interface (live sources; see jpm::stream) ----------------

  void push(double t, std::uint64_t page, std::uint8_t flags) {
    JPM_CHECK_MSG(live, "push-mode requires a LiveSource engine");
    JPM_CHECK_MSG(!finished, "push after finish");
    begin_once();
    step_event(t, page, (flags & workload::kTraceFlagWrite) != 0);
  }

  void push_chunk(const double* times, const std::uint64_t* pages,
                  const std::uint8_t* flags, std::size_t n) {
    JPM_CHECK_MSG(live, "push-mode requires a LiveSource engine");
    JPM_CHECK_MSG(!finished, "push after finish");
    begin_once();
    feed(times, pages, flags, n);
  }

  void advance_to(double t) {
    JPM_CHECK_MSG(live, "push-mode requires a LiveSource engine");
    JPM_CHECK_MSG(!finished, "advance after finish");
    begin_once();
    advance_timers(t);
  }

  void set_forced_fallback(bool on) {
    forced_fallback = on;
    if (manager) manager->set_forced_fallback(on);
  }

  RunMetrics finish(double end) {
    JPM_CHECK_MSG(live, "finish() ends live engines; replays use run()");
    JPM_CHECK_MSG(!finished, "Engine::finish is single-shot");
    begin_once();
    return finish_run(end);
  }
};

Engine::Engine(const workload::SynthesizerConfig& workload,
               const PolicySpec& policy, const EngineConfig& config)
    : impl_(std::make_unique<Impl>(workload, policy, config)) {}
Engine::Engine(ReplayTrace trace, const PolicySpec& policy,
               const EngineConfig& config)
    : impl_(std::make_unique<Impl>(std::move(trace), policy, config)) {}
Engine::Engine(const workload::Trace& trace, const PolicySpec& policy,
               const EngineConfig& config)
    : impl_(std::make_unique<Impl>(trace, policy, config)) {}
Engine::Engine(const LiveSource& source, const PolicySpec& policy,
               const EngineConfig& config)
    : impl_(std::make_unique<Impl>(source, policy, config)) {}
Engine::~Engine() = default;
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;

RunMetrics Engine::run() { return impl_->run(); }

void Engine::push(double t, std::uint64_t page, std::uint8_t flags) {
  impl_->push(t, page, flags);
}
void Engine::push_chunk(const double* times, const std::uint64_t* pages,
                        const std::uint8_t* flags, std::size_t n) {
  impl_->push_chunk(times, pages, flags, n);
}
void Engine::advance_to(double t) { impl_->advance_to(t); }
double Engine::next_boundary_s() const { return impl_->next_boundary; }
double Engine::period_s() const { return impl_->config.joint.period_s; }
void Engine::set_forced_fallback(bool on) { impl_->set_forced_fallback(on); }
void Engine::note_shed(std::uint64_t events) {
  impl_->period_shed_events += events;
}
RunMetrics Engine::finish(double end_s) { return impl_->finish(end_s); }

RunMetrics run_simulation(const workload::SynthesizerConfig& workload,
                          const PolicySpec& policy,
                          const EngineConfig& config) {
  return Engine(workload, policy, config).run();
}

RunMetrics run_simulation(const workload::Trace& trace,
                          const PolicySpec& policy,
                          const EngineConfig& config) {
  return Engine(trace, policy, config).run();
}

RunMetrics replay_simulation(ReplayTrace trace, const PolicySpec& policy,
                             const EngineConfig& config) {
  return Engine(std::move(trace), policy, config).run();
}

}  // namespace jpm::sim
