#include "jpm/sim/policies.h"

#include <sstream>

#include "jpm/util/check.h"

namespace jpm::sim {
namespace {

std::string disk_prefix(DiskPolicyKind disk) {
  switch (disk) {
    case DiskPolicyKind::kTwoCompetitive:
      return "2T";
    case DiskPolicyKind::kAdaptive:
      return "AD";
    case DiskPolicyKind::kPredictive:
      return "PR";
    default:
      JPM_CHECK_MSG(false, "combined methods use 2T, AD, or PR disk policies");
      return {};
  }
}

std::string gb_suffix(std::uint64_t bytes) {
  std::ostringstream os;
  os << bytes / kGiB << "GB";
  return os.str();
}

}  // namespace

PolicySpec joint_policy() {
  return PolicySpec{"Joint", DiskPolicyKind::kJoint, MemPolicyKind::kJoint, 0};
}

PolicySpec always_on_policy() {
  return PolicySpec{"Always-on", DiskPolicyKind::kAlwaysOn,
                    MemPolicyKind::kNapAll, 0};
}

PolicySpec fixed_policy(DiskPolicyKind disk, std::uint64_t bytes) {
  JPM_CHECK(bytes > 0);
  return PolicySpec{disk_prefix(disk) + "FM-" + gb_suffix(bytes), disk,
                    MemPolicyKind::kFixed, bytes};
}

PolicySpec powerdown_policy(DiskPolicyKind disk,
                            std::uint64_t physical_bytes) {
  return PolicySpec{disk_prefix(disk) + "PD-" + gb_suffix(physical_bytes),
                    disk, MemPolicyKind::kPowerDown, 0};
}

PolicySpec disable_policy(DiskPolicyKind disk, std::uint64_t physical_bytes) {
  return PolicySpec{disk_prefix(disk) + "DS-" + gb_suffix(physical_bytes),
                    disk, MemPolicyKind::kDisable, 0};
}

PolicySpec drpm_fixed_policy(std::uint64_t bytes) {
  JPM_CHECK(bytes > 0);
  PolicySpec s{"DRPM-FM-" + gb_suffix(bytes), DiskPolicyKind::kAlwaysOn,
               MemPolicyKind::kFixed, bytes};
  s.multi_speed = true;
  return s;
}

PolicySpec drpm_joint_policy() {
  PolicySpec s{"DRPM-Joint", DiskPolicyKind::kJoint, MemPolicyKind::kJoint, 0};
  s.multi_speed = true;
  return s;
}

std::vector<PolicySpec> paper_policies(
    std::uint64_t physical_bytes, const std::vector<std::uint64_t>& fm_gib) {
  std::vector<PolicySpec> specs;
  specs.push_back(joint_policy());
  for (auto disk :
       {DiskPolicyKind::kTwoCompetitive, DiskPolicyKind::kAdaptive}) {
    for (std::uint64_t g : fm_gib) specs.push_back(fixed_policy(disk, gib(g)));
    specs.push_back(powerdown_policy(disk, physical_bytes));
    specs.push_back(disable_policy(disk, physical_bytes));
  }
  specs.push_back(always_on_policy());
  return specs;
}

}  // namespace jpm::sim
