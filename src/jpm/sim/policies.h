// The named power-management methods compared in the paper (Section V-A).
//
// Each method pairs a disk policy with a memory policy:
//   disk:   2T (2-competitive timeout = break-even time)
//           AD (Douglis adaptive timeout)
//           always-on, or joint (dynamic, set every period)
//   memory: FM-x (fixed size x), PD (timeout power-down, 128 GB),
//           DS (timeout disable, 128 GB), always-on (all nap), or joint.
// paper_policies() returns the paper's full 16-method roster: Joint,
// 2TFM/ADFM at 8/16/32/64/128 GB, 2TPD/ADPD, 2TDS/ADDS, and Always-on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jpm/util/units.h"

namespace jpm::sim {

enum class DiskPolicyKind {
  kTwoCompetitive,
  kAdaptive,
  kPredictive,  // session-predictive EWMA policy (see PredictiveTimeout)
  kAlwaysOn,
  kJoint,
};
enum class MemPolicyKind { kFixed, kPowerDown, kDisable, kNapAll, kJoint };

struct PolicySpec {
  std::string name;
  DiskPolicyKind disk = DiskPolicyKind::kAlwaysOn;
  MemPolicyKind mem = MemPolicyKind::kNapAll;
  std::uint64_t fixed_bytes = 0;  // capacity for kFixed; others use physical
  // Use the DRPM-style multi-speed disk instead of the spin-down disk; the
  // disk timeout policy is then inert (speed control is internal).
  bool multi_speed = false;

  // The two halves of the joint method. They are only meaningful together
  // (the manager sets the memory size AND the disk timeout each period), so
  // the engine requires joint_disk() == joint_memory(); querying them
  // separately exists so that mismatch can be detected rather than one half
  // silently running without the manager.
  bool joint_disk() const { return disk == DiskPolicyKind::kJoint; }
  bool joint_memory() const { return mem == MemPolicyKind::kJoint; }
  bool is_joint() const { return joint_disk() && joint_memory(); }
};

PolicySpec joint_policy();
PolicySpec always_on_policy();
PolicySpec fixed_policy(DiskPolicyKind disk, std::uint64_t bytes);
PolicySpec powerdown_policy(DiskPolicyKind disk, std::uint64_t physical_bytes);
PolicySpec disable_policy(DiskPolicyKind disk, std::uint64_t physical_bytes);
// Multi-speed (DRPM) disk with a fixed memory size, or with joint memory
// resizing (the joint manager still resizes memory; its timeout is inert).
PolicySpec drpm_fixed_policy(std::uint64_t bytes);
PolicySpec drpm_joint_policy();

// The paper's 16 methods. `fm_gib` are the fixed-memory sizes in GiB.
std::vector<PolicySpec> paper_policies(
    std::uint64_t physical_bytes = 128 * kGiB,
    const std::vector<std::uint64_t>& fm_gib = {8, 16, 32, 64, 128});

}  // namespace jpm::sim
