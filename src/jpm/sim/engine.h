// Simulation engine (paper Fig. 6b): workload trace -> disk cache -> disk,
// with a pluggable power-management method driving memory size, bank modes,
// and the disk spin-down timeout.
#pragma once

#include <memory>

#include "jpm/core/joint_power_manager.h"
#include "jpm/fault/fault.h"
#include "jpm/sim/metrics.h"
#include "jpm/sim/policies.h"
#include "jpm/workload/synthesizer.h"

namespace jpm::sim {

struct EngineConfig {
  // Shared model constants; page_bytes is taken from the workload config.
  core::JointConfig joint;
  // Storage backend geometry: 1 disk reproduces the paper; more spindles
  // exercise its multi-disk future-work extension (striped layout, per-disk
  // timeout policies, one shared joint decision).
  std::uint32_t disk_count = 1;
  std::uint64_t stripe_bytes = 64 * kMiB;
  // Latency above which a request counts as "long" (paper: half a second).
  double long_latency_threshold_s = 0.5;
  // Keep per-period records (Fig. 9 timelines); cheap, on by default.
  bool record_periods = true;
  // Warm start: stream the whole data set through cache and trackers before
  // t = 0 (no energy or latency accounted), modelling a server that has been
  // up long enough for the trace to contain no compulsory-miss storm — the
  // situation the paper's captured trace represents.
  bool prefill_cache = false;
  // Metrics (energy, latency, counters) accumulate only after this time;
  // power managers still adapt from t = 0. Keep it a multiple of the period.
  double warm_up_s = 0.0;
  // Writeback flush daemon period: every interval, all dirty pages are
  // written to disk in one (mostly sequential) burst. 0 disables background
  // flushing — dirty pages then reach disk only on eviction and at the end
  // of the run. Only matters for workloads with write traffic.
  double flush_interval_s = 30.0;
  // Sequential readahead on read misses: fetch this many following pages in
  // the same disk operation (Papathanasiou & Scott's energy-aware
  // prefetching direction). 0 disables.
  std::uint32_t readahead_pages = 0;
  // Replay batching: events are pulled from the trace in runs of up to this
  // many that provably cross no period boundary, flush tick, or warm-up
  // edge, letting the hot loop resolve page-table probes for the whole run
  // with software prefetch before applying them. Purely a throughput knob:
  // results are bit-identical for every value (1 = the classic per-event
  // loop). Range 1..65536; generator-driven runs ignore it.
  std::uint32_t batch_size = 1;
  // Fault injection (see fault/fault.h). Disabled by default; a disabled
  // plan leaves the run bit-identical to a config without one. Per-run
  // reliability counters surface in RunMetrics::reliability.
  fault::FaultPlan fault;
};

// A captured or saved trace to replay instead of synthesizing one (see
// workload/trace_io.h for persistence).
struct ReplayTrace {
  std::vector<workload::TraceEvent> events;  // time-sorted
  std::uint64_t page_bytes = 256 * kKiB;
  // Pages in the underlying data set; 0 derives max(page) + 1.
  std::uint64_t total_pages = 0;
  // Simulated duration; 0 derives the last event's timestamp.
  double duration_s = 0.0;
};

// Geometry of a live (push-mode) event source: the jpm::stream daemon feeds
// events through Engine::push / push_chunk instead of a materialized trace,
// so the data-set size must be declared up front (prefill, readahead bounds)
// and the run's end arrives with Engine::finish.
struct LiveSource {
  std::uint64_t page_bytes = 256 * kKiB;
  std::uint64_t total_pages = 0;  // data-set size in pages (required)
  // Expected duration, used only for telemetry annotations; the actual end
  // is whatever finish() receives. 0 = open-ended.
  double duration_hint_s = 0.0;
};

class Engine {
 public:
  Engine(const workload::SynthesizerConfig& workload, const PolicySpec& policy,
         const EngineConfig& config);
  Engine(ReplayTrace trace, const PolicySpec& policy,
         const EngineConfig& config);
  // Replays a shared immutable trace without copying it; the trace must
  // outlive the engine. Any number of engines may replay the same Trace
  // concurrently. Metrics are bit-identical to the synthesizing constructor
  // when the trace came from workload::synthesize_trace of the same config.
  Engine(const workload::Trace& trace, const PolicySpec& policy,
         const EngineConfig& config);
  // Push-mode engine for a live source: no trace, events arrive through
  // push()/push_chunk() and the run ends with finish().
  Engine(const LiveSource& source, const PolicySpec& policy,
         const EngineConfig& config);
  ~Engine();
  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;

  // Runs the whole trace and returns the metrics. Single-shot.
  RunMetrics run();

  // ---- push-mode interface (live sources; see jpm::stream) ----------------
  // Events must arrive with nondecreasing timestamps; `flags` uses the
  // workload trace flag bits. Exclusive with run(): a trace-backed engine
  // uses run(), a LiveSource engine uses push*/advance_to/finish. The replay
  // path is a thin client of the same core (run() == push the whole trace,
  // then finish at the declared duration), so metrics are bit-identical
  // between a replay and a stream of the same events.
  void push(double t, std::uint64_t page, std::uint8_t flags);
  // Batched push over SoA lanes: same hot path as the batched replay
  // (software prefetch across the chunk). Results are bit-identical to
  // per-event push for every chunking.
  void push_chunk(const double* times, const std::uint64_t* pages,
                  const std::uint8_t* flags, std::size_t n);
  // Advances timers (period boundaries, flush ticks, warm-up snapshot, bank
  // expiries) to `t` without an access — the watchdog's forced period close.
  void advance_to(double t);
  // The next period boundary after the events seen so far.
  double next_boundary_s() const;
  double period_s() const;
  // Stream overload hooks. Forced fallback pins the manager to the
  // conservative posture (all memory, 2-competitive timeout, no search) at
  // every boundary while engaged; shed events are charged to the current
  // period, which is flagged degraded-accuracy when it closes.
  void set_forced_fallback(bool on);
  void note_shed(std::uint64_t events);
  // Closes the run at `end_s` (drain flushes, close the final period) and
  // returns the metrics. Single-shot, like run().
  RunMetrics finish(double end_s);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Convenience wrappers: construct + run.
RunMetrics run_simulation(const workload::SynthesizerConfig& workload,
                          const PolicySpec& policy, const EngineConfig& config);
RunMetrics run_simulation(const workload::Trace& trace,
                          const PolicySpec& policy, const EngineConfig& config);
RunMetrics replay_simulation(ReplayTrace trace, const PolicySpec& policy,
                             const EngineConfig& config);

}  // namespace jpm::sim
