#include "jpm/sim/metrics.h"

#include "jpm/util/check.h"

namespace jpm::sim {

NormalizedEnergy normalize_energy(const RunMetrics& m,
                                  const RunMetrics& baseline) {
  NormalizedEnergy n;
  const double base_total = baseline.total_j();
  const double base_disk = baseline.disk_energy.total_j();
  const double base_mem = baseline.mem_energy.total_j();
  JPM_CHECK_MSG(base_total > 0.0 && base_disk > 0.0 && base_mem > 0.0,
                "baseline run has zero energy");
  n.total = m.total_j() / base_total;
  n.disk = m.disk_energy.total_j() / base_disk;
  n.memory = m.mem_energy.total_j() / base_mem;
  return n;
}

}  // namespace jpm::sim
