#include "jpm/cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "jpm/telemetry/registry.h"
#include "jpm/telemetry/telemetry.h"
#include "jpm/util/check.h"
#include "jpm/util/parallel.h"

namespace jpm::cluster {

void ClusterConfig::validate() const {
  const auto bad = [](const std::string& why) {
    throw std::invalid_argument("invalid ClusterConfig: " + why);
  };
  if (server_count == 0) bad("server_count must be at least 1");
  if (partition_pages == 0) bad("partition_pages must be positive");
  if (!(rate_cap_rps > 0.0)) bad("rate_cap_rps must be positive");
  if (!(rate_ewma_tau_s > 0.0)) bad("rate_ewma_tau_s must be positive");
  if (chassis_on_w < 0.0 || chassis_off_w < 0.0) {
    bad("chassis powers must be nonnegative");
  }
  if (!(server_off_idle_s > 0.0)) bad("server_off_idle_s must be positive");
  if (server_boot_s < 0.0) bad("server_boot_s must be nonnegative");
}

double ClusterMetrics::pipeline_energy_j() const {
  double total = 0.0;
  for (const auto& s : servers) total += s.metrics.total_j();
  return total;
}

double ClusterMetrics::chassis_energy_j() const {
  double total = 0.0;
  for (const auto& s : servers) total += s.chassis_energy_j;
  return total;
}

std::uint64_t ClusterMetrics::total_requests() const {
  std::uint64_t total = 0;
  for (const auto& s : servers) total += s.requests;
  return total;
}

double ClusterMetrics::mean_latency_s() const {
  double latency = 0.0;
  std::uint64_t accesses = 0;
  for (const auto& s : servers) {
    latency += s.metrics.total_latency_s;
    accesses += s.metrics.cache_accesses;
  }
  return accesses == 0 ? 0.0 : latency / static_cast<double>(accesses);
}

double ClusterMetrics::long_latency_per_s() const {
  std::uint64_t count = 0;
  for (const auto& s : servers) count += s.metrics.long_latency_count;
  return duration_s == 0.0 ? 0.0
                           : static_cast<double>(count) / duration_s;
}

double ClusterMetrics::balance_index() const {
  double sum = 0.0, sum_sq = 0.0;
  for (const auto& s : servers) {
    const double x = static_cast<double>(s.requests);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(servers.size()) * sum_sq);
}

std::vector<std::uint32_t> route_requests(
    const std::vector<workload::TraceEvent>& trace, const ClusterConfig& cfg) {
  JPM_CHECK(cfg.server_count > 0);
  std::vector<std::uint32_t> routes;
  routes.reserve(trace.size());

  std::uint32_t rr_next = 0;
  std::uint32_t current = 0;  // route of the open request (continuations)
  // kUnbalanced: per-server EWMA request rate.
  std::vector<double> rate(cfg.server_count, 0.0);
  double last_t = 0.0;

  for (const auto& e : trace) {
    if (e.request_start) {
      switch (cfg.distribution) {
        case DistributionPolicy::kRoundRobin:
          current = rr_next;
          rr_next = (rr_next + 1) % cfg.server_count;
          break;
        case DistributionPolicy::kPartitioned:
          current = static_cast<std::uint32_t>(
              (e.page / cfg.partition_pages) % cfg.server_count);
          break;
        case DistributionPolicy::kUnbalanced: {
          const double decay =
              std::exp(-(e.time_s - last_t) / cfg.rate_ewma_tau_s);
          for (auto& r : rate) r *= decay;
          last_t = e.time_s;
          // First server under the cap; the last server takes any overflow.
          current = cfg.server_count - 1;
          for (std::uint32_t s = 0; s < cfg.server_count; ++s) {
            if (rate[s] < cfg.rate_cap_rps) {
              current = s;
              break;
            }
          }
          // One request adds 1/tau, so a steady stream of lambda req/s
          // drives the EWMA toward lambda.
          rate[current] += 1.0 / cfg.rate_ewma_tau_s;
          break;
        }
      }
    }
    routes.push_back(current);
  }
  return routes;
}

FaultRouting route_requests_with_faults(
    const std::vector<workload::TraceEvent>& trace, const ClusterConfig& cfg,
    const std::vector<OutageWindows>& outages) {
  JPM_CHECK(outages.size() == cfg.server_count);
  FaultRouting out;
  out.routes = route_requests(trace, cfg);

  // Per-server cursor into its sorted outage windows; the trace is
  // time-sorted, so each cursor only moves forward.
  std::vector<std::size_t> cursor(cfg.server_count, 0);
  const auto down_at = [&](std::uint32_t s, double t) {
    auto& w = cursor[s];
    while (w < outages[s].size() && outages[s][w].second <= t) ++w;
    return w < outages[s].size() && outages[s][w].first <= t;
  };

  std::uint32_t current = out.routes.empty() ? 0 : out.routes[0];
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (!trace[i].request_start) {
      // Continuations drain on whichever server their request landed on,
      // even if it crashed mid-request (connection draining).
      out.routes[i] = current;
      continue;
    }
    std::uint32_t target = out.routes[i];
    if (down_at(target, trace[i].time_s)) {
      for (std::uint32_t step = 1; step < cfg.server_count; ++step) {
        const auto candidate = static_cast<std::uint32_t>(
            (target + step) % cfg.server_count);
        if (!down_at(candidate, trace[i].time_s)) {
          target = candidate;
          ++out.failed_over_requests;
          break;
        }
      }
      // Every server down: the home server keeps the request.
    }
    out.routes[i] = target;
    current = target;
  }
  return out;
}

ChassisUsage chassis_usage(const std::vector<double>& request_times_s,
                           double duration_s, double off_idle_s) {
  JPM_CHECK(off_idle_s > 0.0);
  ChassisUsage usage;
  // The server starts on; it powers off after each idle stretch exceeding
  // off_idle_s and boots back for the next request.
  double on_since = 0.0;
  double last_activity = 0.0;
  bool on = true;
  for (double t : request_times_s) {
    JPM_DCHECK(t >= last_activity);
    if (on && t - last_activity > off_idle_s) {
      usage.on_s += (last_activity + off_idle_s) - on_since;
      on = false;
      ++usage.power_cycles;
    }
    if (!on) {
      on = true;
      on_since = t;
    }
    last_activity = t;
  }
  if (on) {
    const double end_of_on =
        std::min(duration_s, last_activity + off_idle_s);
    usage.on_s += std::max(end_of_on, on_since) - on_since;
    if (end_of_on < duration_s) ++usage.power_cycles;
  }
  return usage;
}

ChassisUsage chassis_usage(const std::vector<double>& request_times_s,
                           double duration_s, double off_idle_s,
                           const OutageWindows& outages) {
  JPM_CHECK(off_idle_s > 0.0);
  ChassisUsage usage;
  double on_since = 0.0;
  double last_activity = 0.0;
  bool on = true;
  std::size_t w = 0;

  // Idle-timeout transition strictly before time t (the base state machine).
  const auto idle_off_before = [&](double t) {
    if (on && t - last_activity > off_idle_s) {
      usage.on_s += (last_activity + off_idle_s) - on_since;
      on = false;
      ++usage.power_cycles;
    }
  };
  // A crash at `crash` forces the chassis off (one forced power cycle even
  // if the idle timeout already had it off — the restart is a real cycle);
  // the server is back on when the outage ends.
  const auto apply_crash = [&](double crash, double restart) {
    idle_off_before(crash);
    if (on) {
      usage.on_s += std::max(crash, on_since) - on_since;
      on = false;
    }
    ++usage.power_cycles;
    if (restart < duration_s) {
      on = true;
      on_since = restart;
      last_activity = restart;
    }
  };

  for (double t : request_times_s) {
    while (w < outages.size() && outages[w].first <= t) {
      apply_crash(outages[w].first, outages[w].second);
      ++w;
    }
    idle_off_before(t);
    if (!on) {
      on = true;
      on_since = t;
    }
    last_activity = std::max(last_activity, t);
  }
  while (w < outages.size() && outages[w].first < duration_s) {
    apply_crash(outages[w].first, outages[w].second);
    ++w;
  }
  if (on) {
    const double end_of_on =
        std::min(duration_s, last_activity + off_idle_s);
    usage.on_s += std::max(end_of_on, on_since) - on_since;
    if (end_of_on < duration_s) ++usage.power_cycles;
  }
  return usage;
}

ClusterEngine::ClusterEngine(const ClusterConfig& config,
                             const workload::SynthesizerConfig& workload,
                             const sim::PolicySpec& policy)
    : config_(config), workload_(workload), policy_(policy) {
  config.validate();
}

ClusterMetrics ClusterEngine::run() {
  // Materialize the stream once and route request-granularly.
  workload::TraceGenerator generator(workload_);
  const std::uint64_t total_pages = generator.total_pages();
  std::vector<workload::TraceEvent> trace;
  while (auto e = generator.next()) trace.push_back(*e);

  // Injected server crashes: outage windows are drawn per server from the
  // fault plan (deterministic in (seed, server index)) and the dead
  // server's requests fail over to survivors.
  const fault::FaultPlan& plan = config_.engine.fault;
  std::vector<OutageWindows> outages(config_.server_count);
  std::uint64_t crash_count = 0;
  if (plan.crashes_active()) {
    for (std::uint32_t s = 0; s < config_.server_count; ++s) {
      outages[s] = fault::crash_windows(plan, s, workload_.duration_s);
      crash_count += outages[s].size();
    }
  }
  std::uint64_t failed_over = 0;
  std::vector<std::uint32_t> routes;
  if (plan.crashes_active()) {
    FaultRouting fr = route_requests_with_faults(trace, config_, outages);
    routes = std::move(fr.routes);
    failed_over = fr.failed_over_requests;
  } else {
    routes = route_requests(trace, config_);
  }

  std::vector<std::vector<workload::TraceEvent>> per_server(
      config_.server_count);
  std::vector<std::vector<double>> arrivals(config_.server_count);
  std::vector<std::uint64_t> request_counts(config_.server_count, 0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    per_server[routes[i]].push_back(trace[i]);
    if (trace[i].request_start) {
      ++request_counts[routes[i]];
      arrivals[routes[i]].push_back(trace[i].time_s);
    }
  }

  ClusterMetrics out;
  out.duration_s = workload_.duration_s - config_.engine.warm_up_s;
  out.servers.resize(config_.server_count);
  // Per-server telemetry streams, registered serially in server order so
  // the report is independent of how the fan-out below is scheduled.
  std::vector<telemetry::RunRecorder*> recorders;
  if (telemetry::session_active()) {
    recorders.resize(config_.server_count, nullptr);
    for (std::uint32_t s = 0; s < config_.server_count; ++s) {
      recorders[s] = telemetry::begin_run("server" + std::to_string(s));
    }
  }
  // Per-server pipelines replay disjoint sub-traces and share nothing
  // mutable, so they fan out across the pool (JPM_THREADS workers); each
  // task writes only its own ServerOutcome slot.
  util::parallel_for(config_.server_count, [&](std::size_t s) {
    ServerOutcome& server = out.servers[s];
    server.requests = request_counts[s];
    const telemetry::ScopedRun scope(
        recorders.empty() ? nullptr : recorders[s]);
    const telemetry::SpanTimer span("server_pipeline",
                                    "server" + std::to_string(s));
    if (!recorders.empty() && recorders[s] != nullptr) {
      recorders[s]->counter("requests").add(request_counts[s]);
      for (const auto& window : outages[s]) {
        TELEM_EVENT(kCluster, "server_crash", window.first,
                    {"server", static_cast<double>(s)},
                    {"restart_s", window.second});
      }
    }

    // Decorrelate per-server disk-fault streams: without this every
    // server's spindle 0 would replay the same failure sequence.
    sim::EngineConfig engine_cfg = config_.engine;
    if (engine_cfg.fault.disk_faults_active()) {
      engine_cfg.fault.seed = fault::stream_seed(
          plan.seed, 0x2000000ull + static_cast<std::uint64_t>(s));
    }

    if (per_server[s].empty()) {
      // Never touched: the pipeline idles the whole run. Account it with an
      // empty replay (one synthetic no-op would skew counters).
      sim::ReplayTrace idle;
      idle.events.push_back(workload::TraceEvent{0.0, 0, true});
      idle.page_bytes = workload_.page_bytes;
      idle.total_pages = total_pages;
      idle.duration_s = workload_.duration_s;
      server.metrics =
          sim::replay_simulation(std::move(idle), policy_, engine_cfg);
    } else {
      sim::ReplayTrace replay;
      replay.events = std::move(per_server[s]);
      replay.page_bytes = workload_.page_bytes;
      replay.total_pages = total_pages;
      replay.duration_s = workload_.duration_s;
      server.metrics =
          sim::replay_simulation(std::move(replay), policy_, engine_cfg);
    }

    const auto usage =
        plan.crashes_active()
            ? chassis_usage(arrivals[s], workload_.duration_s,
                            config_.server_off_idle_s, outages[s])
            : chassis_usage(arrivals[s], workload_.duration_s,
                            config_.server_off_idle_s);
    server.chassis_on_s = usage.on_s;
    server.power_cycles = usage.power_cycles;
    server.chassis_energy_j =
        config_.chassis_on_w * usage.on_s +
        config_.chassis_off_w * (workload_.duration_s - usage.on_s);
    if (!recorders.empty() && recorders[s] != nullptr) {
      recorders[s]->gauge("chassis_on_s").set(usage.on_s);
      recorders[s]->counter("power_cycles").add(usage.power_cycles);
    }
  });
  TELEM_EVENT(kCluster, "cluster_done", workload_.duration_s,
              {"servers", static_cast<double>(config_.server_count)},
              {"crashes", static_cast<double>(crash_count)},
              {"failed_over", static_cast<double>(failed_over)});

  for (const auto& s : out.servers) {
    out.reliability.merge(s.metrics.reliability);
  }
  out.reliability.server_crashes += crash_count;
  out.reliability.failed_over_requests += failed_over;
  return out;
}

}  // namespace jpm::cluster
