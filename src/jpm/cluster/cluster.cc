#include "jpm/cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "jpm/telemetry/registry.h"
#include "jpm/telemetry/telemetry.h"
#include "jpm/util/check.h"
#include "jpm/util/parallel.h"

namespace jpm::cluster {

void ClusterConfig::validate() const {
  const auto bad = [](const std::string& why) {
    throw std::invalid_argument("invalid ClusterConfig: " + why);
  };
  if (server_count == 0) bad("server_count must be at least 1");
  if (partition_pages == 0) bad("partition_pages must be positive");
  if (!(rate_cap_rps > 0.0)) bad("rate_cap_rps must be positive");
  if (!(rate_ewma_tau_s > 0.0)) bad("rate_ewma_tau_s must be positive");
  if (chassis_on_w < 0.0 || chassis_off_w < 0.0) {
    bad("chassis powers must be nonnegative");
  }
  if (!(server_off_idle_s > 0.0)) bad("server_off_idle_s must be positive");
  if (server_boot_s < 0.0) bad("server_boot_s must be nonnegative");
}

double ClusterMetrics::pipeline_energy_j() const {
  double total = 0.0;
  for (const auto& s : servers) total += s.metrics.total_j();
  return total;
}

double ClusterMetrics::chassis_energy_j() const {
  double total = 0.0;
  for (const auto& s : servers) total += s.chassis_energy_j;
  return total;
}

std::uint64_t ClusterMetrics::total_requests() const {
  std::uint64_t total = 0;
  for (const auto& s : servers) total += s.requests;
  return total;
}

double ClusterMetrics::mean_latency_s() const {
  double latency = 0.0;
  std::uint64_t accesses = 0;
  for (const auto& s : servers) {
    latency += s.metrics.total_latency_s;
    accesses += s.metrics.cache_accesses;
  }
  return accesses == 0 ? 0.0 : latency / static_cast<double>(accesses);
}

double ClusterMetrics::long_latency_per_s() const {
  std::uint64_t count = 0;
  for (const auto& s : servers) count += s.metrics.long_latency_count;
  return duration_s == 0.0 ? 0.0
                           : static_cast<double>(count) / duration_s;
}

double ClusterMetrics::balance_index() const {
  double sum = 0.0, sum_sq = 0.0;
  for (const auto& s : servers) {
    const double x = static_cast<double>(s.requests);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(servers.size()) * sum_sq);
}

namespace {

workload::Trace to_trace(const std::vector<workload::TraceEvent>& events) {
  workload::Trace t;
  t.reserve(events.size());
  for (const auto& e : events) t.push_back(e);
  return t;
}

}  // namespace

std::vector<std::uint32_t> route_requests(const workload::Trace& trace,
                                          const ClusterConfig& cfg) {
  JPM_CHECK(cfg.server_count > 0);
  const std::size_t n = trace.size();
  std::vector<std::uint32_t> routes;
  routes.reserve(n);

  std::uint32_t rr_next = 0;
  std::uint32_t current = 0;  // route of the open request (continuations)
  // kUnbalanced: per-server EWMA request rate.
  std::vector<double> rate(cfg.server_count, 0.0);
  double last_t = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    if ((trace.flags[i] & workload::kTraceFlagStart) != 0) {
      switch (cfg.distribution) {
        case DistributionPolicy::kRoundRobin:
          current = rr_next;
          rr_next = (rr_next + 1) % cfg.server_count;
          break;
        case DistributionPolicy::kPartitioned:
          current = static_cast<std::uint32_t>(
              (trace.pages[i] / cfg.partition_pages) % cfg.server_count);
          break;
        case DistributionPolicy::kUnbalanced: {
          const double decay =
              std::exp(-(trace.times[i] - last_t) / cfg.rate_ewma_tau_s);
          for (auto& r : rate) r *= decay;
          last_t = trace.times[i];
          // First server under the cap; the last server takes any overflow.
          current = cfg.server_count - 1;
          for (std::uint32_t s = 0; s < cfg.server_count; ++s) {
            if (rate[s] < cfg.rate_cap_rps) {
              current = s;
              break;
            }
          }
          // One request adds 1/tau, so a steady stream of lambda req/s
          // drives the EWMA toward lambda.
          rate[current] += 1.0 / cfg.rate_ewma_tau_s;
          break;
        }
      }
    }
    routes.push_back(current);
  }
  return routes;
}

std::vector<std::uint32_t> route_requests(
    const std::vector<workload::TraceEvent>& trace, const ClusterConfig& cfg) {
  return route_requests(to_trace(trace), cfg);
}

FaultRouting route_requests_with_faults(
    const workload::Trace& trace, const ClusterConfig& cfg,
    const std::vector<OutageWindows>& outages) {
  JPM_CHECK(outages.size() == cfg.server_count);
  FaultRouting out;
  out.routes = route_requests(trace, cfg);

  // Per-server cursor into its sorted outage windows; the trace is
  // time-sorted, so each cursor only moves forward.
  std::vector<std::size_t> cursor(cfg.server_count, 0);
  const auto down_at = [&](std::uint32_t s, double t) {
    auto& w = cursor[s];
    while (w < outages[s].size() && outages[s][w].second <= t) ++w;
    return w < outages[s].size() && outages[s][w].first <= t;
  };

  std::uint32_t current = out.routes.empty() ? 0 : out.routes[0];
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if ((trace.flags[i] & workload::kTraceFlagStart) == 0) {
      // Continuations drain on whichever server their request landed on,
      // even if it crashed mid-request (connection draining).
      out.routes[i] = current;
      continue;
    }
    std::uint32_t target = out.routes[i];
    if (down_at(target, trace.times[i])) {
      for (std::uint32_t step = 1; step < cfg.server_count; ++step) {
        const auto candidate = static_cast<std::uint32_t>(
            (target + step) % cfg.server_count);
        if (!down_at(candidate, trace.times[i])) {
          target = candidate;
          ++out.failed_over_requests;
          break;
        }
      }
      // Every server down: the home server keeps the request.
    }
    out.routes[i] = target;
    current = target;
  }
  return out;
}

FaultRouting route_requests_with_faults(
    const std::vector<workload::TraceEvent>& trace, const ClusterConfig& cfg,
    const std::vector<OutageWindows>& outages) {
  return route_requests_with_faults(to_trace(trace), cfg, outages);
}

ChassisUsage chassis_usage(const double* request_times_s, std::size_t n,
                           double duration_s, double off_idle_s) {
  JPM_CHECK(off_idle_s > 0.0);
  ChassisUsage usage;
  // The server starts on; it powers off after each idle stretch exceeding
  // off_idle_s and boots back for the next request.
  double on_since = 0.0;
  double last_activity = 0.0;
  bool on = true;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = request_times_s[i];
    JPM_DCHECK(t >= last_activity);
    if (on && t - last_activity > off_idle_s) {
      usage.on_s += (last_activity + off_idle_s) - on_since;
      on = false;
      ++usage.power_cycles;
    }
    if (!on) {
      on = true;
      on_since = t;
    }
    last_activity = t;
  }
  if (on) {
    const double end_of_on =
        std::min(duration_s, last_activity + off_idle_s);
    usage.on_s += std::max(end_of_on, on_since) - on_since;
    if (end_of_on < duration_s) ++usage.power_cycles;
  }
  return usage;
}

ChassisUsage chassis_usage(const std::vector<double>& request_times_s,
                           double duration_s, double off_idle_s) {
  return chassis_usage(request_times_s.data(), request_times_s.size(),
                       duration_s, off_idle_s);
}

ChassisUsage chassis_usage(const double* request_times_s, std::size_t n,
                           double duration_s, double off_idle_s,
                           const OutageWindows& outages) {
  JPM_CHECK(off_idle_s > 0.0);
  ChassisUsage usage;
  double on_since = 0.0;
  double last_activity = 0.0;
  bool on = true;
  std::size_t w = 0;

  // Idle-timeout transition strictly before time t (the base state machine).
  const auto idle_off_before = [&](double t) {
    if (on && t - last_activity > off_idle_s) {
      usage.on_s += (last_activity + off_idle_s) - on_since;
      on = false;
      ++usage.power_cycles;
    }
  };
  // A crash at `crash` forces the chassis off (one forced power cycle even
  // if the idle timeout already had it off — the restart is a real cycle);
  // the server is back on when the outage ends.
  const auto apply_crash = [&](double crash, double restart) {
    idle_off_before(crash);
    if (on) {
      usage.on_s += std::max(crash, on_since) - on_since;
      on = false;
    }
    ++usage.power_cycles;
    if (restart < duration_s) {
      on = true;
      on_since = restart;
      last_activity = restart;
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    const double t = request_times_s[i];
    while (w < outages.size() && outages[w].first <= t) {
      apply_crash(outages[w].first, outages[w].second);
      ++w;
    }
    idle_off_before(t);
    if (!on) {
      on = true;
      on_since = t;
    }
    last_activity = std::max(last_activity, t);
  }
  while (w < outages.size() && outages[w].first < duration_s) {
    apply_crash(outages[w].first, outages[w].second);
    ++w;
  }
  if (on) {
    const double end_of_on =
        std::min(duration_s, last_activity + off_idle_s);
    usage.on_s += std::max(end_of_on, on_since) - on_since;
    if (end_of_on < duration_s) ++usage.power_cycles;
  }
  return usage;
}

ChassisUsage chassis_usage(const std::vector<double>& request_times_s,
                           double duration_s, double off_idle_s,
                           const OutageWindows& outages) {
  return chassis_usage(request_times_s.data(), request_times_s.size(),
                       duration_s, off_idle_s, outages);
}

ShardLayout build_shard_layout(const workload::Trace& trace,
                               const std::vector<std::uint32_t>& routes,
                               std::uint32_t server_count) {
  JPM_CHECK(routes.size() == trace.size());
  JPM_CHECK(server_count > 0);
  ShardLayout out;
  out.event_offsets.assign(server_count + 1, 0);
  out.arrival_offsets.assign(server_count + 1, 0);
  out.request_counts.assign(server_count, 0);

  // Counting pass: block sizes per server (offsets shifted one right so the
  // prefix sum lands in place).
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::uint32_t s = routes[i];
    JPM_DCHECK(s < server_count);
    ++out.event_offsets[s + 1];
    if ((trace.flags[i] & workload::kTraceFlagStart) != 0) {
      ++out.arrival_offsets[s + 1];
      ++out.request_counts[s];
    }
  }
  for (std::uint32_t s = 0; s < server_count; ++s) {
    out.event_offsets[s + 1] += out.event_offsets[s];
    out.arrival_offsets[s + 1] += out.arrival_offsets[s];
  }

  // Scatter pass: one write cursor per server walks its block; time order
  // within a block follows trace order.
  out.times.resize(trace.size());
  out.pages.resize(trace.size());
  out.flags.resize(trace.size());
  out.arrivals.resize(out.arrival_offsets[server_count]);
  std::vector<std::size_t> event_cursor(out.event_offsets.begin(),
                                        out.event_offsets.end() - 1);
  std::vector<std::size_t> arrival_cursor(out.arrival_offsets.begin(),
                                          out.arrival_offsets.end() - 1);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::uint32_t s = routes[i];
    const std::size_t at = event_cursor[s]++;
    out.times[at] = trace.times[i];
    out.pages[at] = trace.pages[i];
    out.flags[at] = trace.flags[i];
    if ((trace.flags[i] & workload::kTraceFlagStart) != 0) {
      out.arrivals[arrival_cursor[s]++] = trace.times[i];
    }
  }
  return out;
}

ClusterEngine::ClusterEngine(const ClusterConfig& config,
                             const workload::SynthesizerConfig& workload,
                             const sim::PolicySpec& policy)
    : config_(config), workload_(workload), policy_(policy) {
  config.validate();
}

ClusterMetrics ClusterEngine::run() {
  // Materialize the stream once (SoA lanes) and route request-granularly.
  const workload::Trace trace = workload::synthesize_trace(workload_);
  const std::uint64_t total_pages = trace.total_pages;

  // Injected server crashes: outage windows are drawn per server from the
  // fault plan (deterministic in (seed, server index)) and the dead
  // server's requests fail over to survivors.
  const fault::FaultPlan& plan = config_.engine.fault;
  std::vector<OutageWindows> outages(config_.server_count);
  std::uint64_t crash_count = 0;
  if (plan.crashes_active()) {
    for (std::uint32_t s = 0; s < config_.server_count; ++s) {
      outages[s] = fault::crash_windows(plan, s, workload_.duration_s);
      crash_count += outages[s].size();
    }
  }
  std::uint64_t failed_over = 0;
  std::vector<std::uint32_t> routes;
  if (plan.crashes_active()) {
    FaultRouting fr = route_requests_with_faults(trace, config_, outages);
    routes = std::move(fr.routes);
    failed_over = fr.failed_over_requests;
  } else {
    routes = route_requests(trace, config_);
  }

  // Pack every server's events into the contiguous shard arena; the routed
  // AoS-per-server vectors this replaces cost one allocation per server and
  // scattered the fleet's state across the heap.
  const ShardLayout shards =
      build_shard_layout(trace, routes, config_.server_count);

  ClusterMetrics out;
  out.duration_s = workload_.duration_s - config_.engine.warm_up_s;
  out.servers.resize(config_.server_count);
  // Per-server telemetry streams, registered serially in server order so
  // the report is independent of how the fan-out below is scheduled.
  std::vector<telemetry::RunRecorder*> recorders;
  if (server_telemetry_ && telemetry::session_active()) {
    recorders.resize(config_.server_count, nullptr);
    for (std::uint32_t s = 0; s < config_.server_count; ++s) {
      recorders[s] = telemetry::begin_run("server" + std::to_string(s));
    }
  }
  // Per-server pipelines replay disjoint shard blocks and share nothing
  // mutable, so they fan out as stealable tasks (JPM_THREADS workers,
  // JPM_SCHED schedule — stealing absorbs stragglers like fault-heavy or
  // hot-partition servers); each task writes only its own ServerOutcome
  // slot, so results never depend on the schedule.
  util::parallel_for(config_.server_count, [&](std::size_t s) {
    ServerOutcome& server = out.servers[s];
    server.requests = shards.request_counts[s];
    const telemetry::ScopedRun scope(
        recorders.empty() ? nullptr : recorders[s]);
    const telemetry::SpanTimer span("server_pipeline",
                                    "server" + std::to_string(s));
    if (!recorders.empty() && recorders[s] != nullptr) {
      recorders[s]->counter("requests").add(shards.request_counts[s]);
      for (const auto& window : outages[s]) {
        TELEM_EVENT(kCluster, "server_crash", window.first,
                    {"server", static_cast<double>(s)},
                    {"restart_s", window.second});
      }
    }

    // Decorrelate per-server disk-fault streams: without this every
    // server's spindle 0 would replay the same failure sequence.
    sim::EngineConfig engine_cfg = config_.engine;
    if (engine_cfg.fault.disk_faults_active()) {
      engine_cfg.fault.seed = fault::stream_seed(
          plan.seed, 0x2000000ull + static_cast<std::uint64_t>(s));
    }

    // Replay the server's shard block zero-copy through the push-mode
    // engine (bit-identical to a materialized replay of the same events).
    sim::LiveSource source;
    source.page_bytes = workload_.page_bytes;
    source.total_pages = total_pages;
    source.duration_hint_s = workload_.duration_s;
    sim::Engine engine(source, policy_, engine_cfg);
    const std::size_t begin = shards.event_offsets[s];
    const std::size_t count = shards.events_of(static_cast<std::uint32_t>(s));
    if (count == 0) {
      // Never touched: the pipeline idles the whole run. Account it with a
      // single synthetic request-start at t=0, exactly like the replay path
      // always has.
      engine.push(0.0, 0, workload::kTraceFlagStart);
    } else {
      engine.push_chunk(shards.times.data() + begin,
                        shards.pages.data() + begin,
                        shards.flags.data() + begin, count);
    }
    server.metrics = engine.finish(workload_.duration_s);

    const double* arrivals = shards.arrivals.data() + shards.arrival_offsets[s];
    const std::size_t n_arrivals =
        shards.arrival_offsets[s + 1] - shards.arrival_offsets[s];
    const auto usage =
        plan.crashes_active()
            ? chassis_usage(arrivals, n_arrivals, workload_.duration_s,
                            config_.server_off_idle_s, outages[s])
            : chassis_usage(arrivals, n_arrivals, workload_.duration_s,
                            config_.server_off_idle_s);
    server.chassis_on_s = usage.on_s;
    server.power_cycles = usage.power_cycles;
    server.chassis_energy_j =
        config_.chassis_on_w * usage.on_s +
        config_.chassis_off_w * (workload_.duration_s - usage.on_s);
    if (!recorders.empty() && recorders[s] != nullptr) {
      recorders[s]->gauge("chassis_on_s").set(usage.on_s);
      recorders[s]->counter("power_cycles").add(usage.power_cycles);
    }
  });
  TELEM_EVENT(kCluster, "cluster_done", workload_.duration_s,
              {"servers", static_cast<double>(config_.server_count)},
              {"crashes", static_cast<double>(crash_count)},
              {"failed_over", static_cast<double>(failed_over)});

  // Reduce in fixed server order — aggregation stays byte-stable no matter
  // which worker finished which server first.
  for (const auto& s : out.servers) {
    out.reliability.merge(s.metrics.reliability);
  }
  out.reliability.server_crashes += crash_count;
  out.reliability.failed_over_requests += failed_over;
  return out;
}

std::vector<ClusterSweepPoint> run_cluster_sweep(
    const ClusterConfig& config,
    const std::vector<sim::SweepWorkload>& workloads,
    const std::vector<sim::PolicySpec>& roster,
    const std::function<void(const std::string&)>& progress) {
  config.validate();
  JPM_CHECK_MSG(!workloads.empty(), "cluster sweep has no workload points");
  JPM_CHECK_MSG(!roster.empty(), "cluster sweep has an empty policy roster");
  const std::size_t n_points = workloads.size();
  const std::size_t n_policies = roster.size();
  TELEM_EVENT(kSweep, "cluster_sweep_begin", 0.0,
              {"points", static_cast<double>(n_points)},
              {"policies", static_cast<double>(n_policies)},
              {"servers", static_cast<double>(config.server_count)});

  std::vector<ClusterSweepPoint> points(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    points[i].label = workloads[i].label;
    points[i].workload = workloads[i].workload;
    points[i].outcomes.resize(n_policies);
    for (std::size_t j = 0; j < n_policies; ++j) {
      points[i].outcomes[j].spec = roster[j];
    }
  }

  // One telemetry run per (point, policy) job, registered serially in job
  // order before the fan-out (stream ids depend only on the sweep's shape).
  // Axis coordinates are stamped here; the per-server streams inside each
  // ClusterEngine are disabled (see set_server_telemetry).
  std::vector<telemetry::RunRecorder*> recorders;
  if (telemetry::session_active()) {
    recorders.resize(n_points * n_policies, nullptr);
    for (std::size_t i = 0; i < n_points; ++i) {
      for (std::size_t j = 0; j < n_policies; ++j) {
        telemetry::RunRecorder* rec =
            telemetry::begin_run(points[i].label + "/" + roster[j].name);
        for (const auto& [axis, value] : workloads[i].axes) {
          rec->gauge("axis/" + axis).set(value);
        }
        recorders[i * n_policies + j] = rec;
      }
    }
  }

  // Jobs fan out point-major in roster order; inside each job the cluster's
  // own per-server parallel_for hits the nested-parallelism guard and runs
  // inline, so a fleet sweep is parallel across jobs, serial within one.
  sim::OrderedProgress ordered(n_points * n_policies, progress);
  util::parallel_for(n_points * n_policies, [&](std::size_t t) {
    const std::size_t i = t / n_policies;
    const std::size_t j = t % n_policies;
    ClusterSweepOutcome& outcome = points[i].outcomes[j];
    const telemetry::ScopedRun scope(
        recorders.empty() ? nullptr : recorders[t]);
    const telemetry::SpanTimer span(
        "cluster_point", points[i].label + "/" + roster[j].name);
    ClusterEngine engine(config, workloads[i].workload, roster[j]);
    engine.set_server_telemetry(false);
    outcome.metrics = engine.run();
    if (progress) {
      std::ostringstream os;
      os << "[" << points[i].label << "] " << roster[j].name << ": total "
         << outcome.metrics.total_j() / 1e3 << " kJ, balance "
         << outcome.metrics.balance_index();
      ordered.emit(t, os.str());
    }
  });
  TELEM_EVENT(kSweep, "cluster_sweep_end", 0.0,
              {"runs", static_cast<double>(n_points * n_policies)});
  return points;
}

}  // namespace jpm::cluster
