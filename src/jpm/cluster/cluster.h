// Server-cluster extension (paper Sections II-B and VI): the joint method
// deployed across a cluster, combined with the request-distribution schemes
// the paper cites (Pinheiro et al.'s workload unbalancing, Rajamani &
// Lefurgy's request distribution).
//
// The cluster layer splits one request stream across servers at request
// granularity, runs each server's full memory+disk pipeline independently
// (replaying its sub-trace through the standard engine), and adds
// chassis-level power accounting: a server whose request stream goes quiet
// long enough can be switched off entirely — the cluster-scale analogue of
// the disk timeout.
//
// Distribution policies:
//   * kRoundRobin   — requests rotate across servers; every cache sees the
//                     whole working set (maximal duplication).
//   * kPartitioned  — content partitioning by on-disk extent; each server
//                     caches only its share (no duplication, load follows
//                     data popularity).
//   * kUnbalanced   — concentrate requests on the fewest servers that stay
//                     under a rate cap; surplus servers idle and power off.
#pragma once

#include <cstdint>
#include <vector>

#include "jpm/sim/engine.h"

namespace jpm::cluster {

enum class DistributionPolicy { kRoundRobin, kPartitioned, kUnbalanced };

struct ClusterConfig {
  std::uint32_t server_count = 2;
  DistributionPolicy distribution = DistributionPolicy::kPartitioned;
  // Per-server engine configuration (memory size, disk, joint constants).
  sim::EngineConfig engine;
  // Content-partition extent for kPartitioned, in pages.
  std::uint64_t partition_pages = 256;
  // kUnbalanced: per-server request-rate cap (requests/s over the EWMA
  // window) before spilling to the next server.
  double rate_cap_rps = 400.0;
  double rate_ewma_tau_s = 60.0;
  // Chassis power: consumed by a server that is on (fans, CPU idle, PSU),
  // on top of the memory and disk the engines account. Zero by default so
  // memory+disk comparisons match the single-server benches.
  double chassis_on_w = 0.0;
  double chassis_off_w = 0.0;
  // A server with no requests for this long powers off until its next
  // request (kUnbalanced-style consolidation makes such windows long).
  double server_off_idle_s = 600.0;
  double server_boot_s = 30.0;  // unavailable time on power-up
};

struct ServerOutcome {
  sim::RunMetrics metrics;      // memory + disk pipeline results
  std::uint64_t requests = 0;   // requests routed to this server
  double chassis_on_s = 0.0;
  double chassis_energy_j = 0.0;
  std::uint64_t power_cycles = 0;
};

struct ClusterMetrics {
  std::vector<ServerOutcome> servers;
  double duration_s = 0.0;

  double pipeline_energy_j() const;  // sum of memory+disk energy
  double chassis_energy_j() const;
  double total_j() const { return pipeline_energy_j() + chassis_energy_j(); }
  std::uint64_t total_requests() const;
  double mean_latency_s() const;
  double long_latency_per_s() const;
  // Jain's fairness index over per-server request counts: 1 = perfectly
  // balanced, 1/n = fully concentrated.
  double balance_index() const;
};

class ClusterEngine {
 public:
  ClusterEngine(const ClusterConfig& config,
                const workload::SynthesizerConfig& workload,
                const sim::PolicySpec& policy);

  // Splits the workload, replays every server, and aggregates.
  ClusterMetrics run();

 private:
  ClusterConfig config_;
  workload::SynthesizerConfig workload_;
  sim::PolicySpec policy_;
};

// Routing decision sequence for a request stream (exposed for testing).
std::vector<std::uint32_t> route_requests(
    const std::vector<workload::TraceEvent>& trace, const ClusterConfig& cfg);

// Chassis on/off accounting over one server's request arrival times.
struct ChassisUsage {
  double on_s = 0.0;
  std::uint64_t power_cycles = 0;
};
ChassisUsage chassis_usage(const std::vector<double>& request_times_s,
                           double duration_s, double off_idle_s);

}  // namespace jpm::cluster
