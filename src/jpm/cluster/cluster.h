// Server-cluster extension (paper Sections II-B and VI): the joint method
// deployed across a cluster, combined with the request-distribution schemes
// the paper cites (Pinheiro et al.'s workload unbalancing, Rajamani &
// Lefurgy's request distribution).
//
// The cluster layer splits one request stream across servers at request
// granularity, runs each server's full memory+disk pipeline independently
// (replaying its sub-trace through the standard engine), and adds
// chassis-level power accounting: a server whose request stream goes quiet
// long enough can be switched off entirely — the cluster-scale analogue of
// the disk timeout.
//
// Distribution policies:
//   * kRoundRobin   — requests rotate across servers; every cache sees the
//                     whole working set (maximal duplication).
//   * kPartitioned  — content partitioning by on-disk extent; each server
//                     caches only its share (no duplication, load follows
//                     data popularity).
//   * kUnbalanced   — concentrate requests on the fewest servers that stay
//                     under a rate cap; surplus servers idle and power off.
//
// Fleet scale: one scenario may sweep hundreds of workload points over a
// 1000+ server cluster. Per-server event state lives in one contiguous
// structure-of-arrays shard arena (ShardLayout) allocated up front — no
// per-server vector<vector<...>> heap scatter — and servers execute as
// stealable tasks on the work-stealing pool. Every task writes only its own
// preallocated ServerOutcome slot and metrics reduce in fixed server order,
// so aggregates are byte-stable at any JPM_THREADS / JPM_SCHED.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "jpm/sim/engine.h"
#include "jpm/sim/runner.h"

namespace jpm::cluster {

enum class DistributionPolicy { kRoundRobin, kPartitioned, kUnbalanced };

struct ClusterConfig {
  std::uint32_t server_count = 2;
  DistributionPolicy distribution = DistributionPolicy::kPartitioned;
  // Per-server engine configuration (memory size, disk, joint constants).
  sim::EngineConfig engine;
  // Content-partition extent for kPartitioned, in pages.
  std::uint64_t partition_pages = 256;
  // kUnbalanced: per-server request-rate cap (requests/s over the EWMA
  // window) before spilling to the next server.
  double rate_cap_rps = 400.0;
  double rate_ewma_tau_s = 60.0;
  // Chassis power: consumed by a server that is on (fans, CPU idle, PSU),
  // on top of the memory and disk the engines account. Zero by default so
  // memory+disk comparisons match the single-server benches.
  double chassis_on_w = 0.0;
  double chassis_off_w = 0.0;
  // A server with no requests for this long powers off until its next
  // request (kUnbalanced-style consolidation makes such windows long).
  double server_off_idle_s = 600.0;
  double server_boot_s = 30.0;  // unavailable time on power-up

  // Rejects nonsensical cluster configurations (zero server_count, zero
  // partition_pages, negative powers/intervals) with a descriptive
  // std::invalid_argument. The nested engine config is validated by the
  // engines themselves.
  void validate() const;
};

struct ServerOutcome {
  sim::RunMetrics metrics;      // memory + disk pipeline results
  std::uint64_t requests = 0;   // requests routed to this server
  double chassis_on_s = 0.0;
  double chassis_energy_j = 0.0;
  std::uint64_t power_cycles = 0;
};

struct ClusterMetrics {
  std::vector<ServerOutcome> servers;
  double duration_s = 0.0;
  // Aggregated fault-injection outcome: per-server pipeline counters merged
  // with cluster-level crash and failover counts (all-zero without faults).
  fault::ReliabilityMetrics reliability;

  double pipeline_energy_j() const;  // sum of memory+disk energy
  double chassis_energy_j() const;
  double total_j() const { return pipeline_energy_j() + chassis_energy_j(); }
  std::uint64_t total_requests() const;
  double mean_latency_s() const;
  double long_latency_per_s() const;
  // Jain's fairness index over per-server request counts: 1 = perfectly
  // balanced, 1/n = fully concentrated.
  double balance_index() const;
};

// The cluster's per-server event state, packed into one contiguous SoA
// arena: server s owns the half-open slice
// [event_offsets[s], event_offsets[s+1]) of the times/pages/flags lanes and
// [arrival_offsets[s], arrival_offsets[s+1]) of the arrivals lane. Blocks
// are sized by a counting pass and filled by a single scatter pass, so the
// whole fleet's state is three allocations regardless of server count, each
// server's events are contiguous (cache- and prefetch-friendly for the
// batched engine), and a server task replays its block zero-copy through the
// engine's push-mode interface.
struct ShardLayout {
  std::vector<double> times;
  std::vector<std::uint64_t> pages;
  std::vector<std::uint8_t> flags;          // workload trace flag bits
  std::vector<std::size_t> event_offsets;   // server_count + 1 entries
  std::vector<double> arrivals;             // request start times (chassis)
  std::vector<std::size_t> arrival_offsets; // server_count + 1 entries
  std::vector<std::uint64_t> request_counts;

  std::uint32_t server_count() const {
    return event_offsets.empty()
               ? 0
               : static_cast<std::uint32_t>(event_offsets.size() - 1);
  }
  std::size_t events_of(std::uint32_t s) const {
    return event_offsets[s + 1] - event_offsets[s];
  }
};

// Builds the shard arena from a routed trace (exposed for testing). Events
// keep their time order within each server's block.
ShardLayout build_shard_layout(const workload::Trace& trace,
                               const std::vector<std::uint32_t>& routes,
                               std::uint32_t server_count);

class ClusterEngine {
 public:
  ClusterEngine(const ClusterConfig& config,
                const workload::SynthesizerConfig& workload,
                const sim::PolicySpec& policy);

  // Per-server telemetry runs ("server0", ...) register by default. A sweep
  // driver that already owns one telemetry run per (point, policy) job turns
  // them off: a 500-point × 1000-server grid would otherwise register half a
  // million streams, from inside the fan-out, in schedule-dependent order.
  void set_server_telemetry(bool enabled) { server_telemetry_ = enabled; }

  // Splits the workload, replays every server, and aggregates.
  ClusterMetrics run();

 private:
  ClusterConfig config_;
  workload::SynthesizerConfig workload_;
  sim::PolicySpec policy_;
  bool server_telemetry_ = true;
};

// One policy's cluster result at one sweep point.
struct ClusterSweepOutcome {
  sim::PolicySpec spec;
  ClusterMetrics metrics;
};

struct ClusterSweepPoint {
  std::string label;
  workload::SynthesizerConfig workload;
  std::vector<ClusterSweepOutcome> outcomes;  // roster order
};

// Runs every roster policy's ClusterEngine at every workload point. Jobs
// (point-major, roster order) fan out as stealable tasks; each cluster's
// inner per-server loop then runs inline on its worker (nested-parallelism
// guard), so fleet sweeps parallelize across points without oversubscribing.
// Results sit in preallocated slots and `progress` lines are emitted in job
// order, so output is bit-identical at any JPM_THREADS / JPM_SCHED. Unlike
// sim::run_sweep there is no always-on-baseline requirement (cluster
// metrics are absolute, not normalized). Axis coordinates on the workloads
// surface as `axis/<name>` gauges on each job's telemetry run.
std::vector<ClusterSweepPoint> run_cluster_sweep(
    const ClusterConfig& config,
    const std::vector<sim::SweepWorkload>& workloads,
    const std::vector<sim::PolicySpec>& roster,
    const std::function<void(const std::string&)>& progress = {});

// Routing decision sequence for a request stream. The Trace overload is the
// primary (reads the SoA lanes directly); the AoS form converts and
// forwards (exposed for testing and interop).
std::vector<std::uint32_t> route_requests(const workload::Trace& trace,
                                          const ClusterConfig& cfg);
std::vector<std::uint32_t> route_requests(
    const std::vector<workload::TraceEvent>& trace, const ClusterConfig& cfg);

// Per-server crash outage windows, sorted and disjoint.
using OutageWindows = std::vector<std::pair<double, double>>;

// Fault-aware routing: requests whose home server is inside an outage
// window re-route to the next surviving server in ring order (with every
// server down the home server keeps the request). Continuations follow
// their request's route — connections opened before a crash drain on the
// original server. Exposed for testing.
struct FaultRouting {
  std::vector<std::uint32_t> routes;
  std::uint64_t failed_over_requests = 0;
};
FaultRouting route_requests_with_faults(const workload::Trace& trace,
                                        const ClusterConfig& cfg,
                                        const std::vector<OutageWindows>& outages);
FaultRouting route_requests_with_faults(
    const std::vector<workload::TraceEvent>& trace, const ClusterConfig& cfg,
    const std::vector<OutageWindows>& outages);

// Chassis on/off accounting over one server's request arrival times. The
// pointer form reads an arrival slice straight out of the shard arena; the
// vector overloads forward to it.
struct ChassisUsage {
  double on_s = 0.0;
  std::uint64_t power_cycles = 0;
};
ChassisUsage chassis_usage(const double* request_times_s, std::size_t n,
                           double duration_s, double off_idle_s);
ChassisUsage chassis_usage(const std::vector<double>& request_times_s,
                           double duration_s, double off_idle_s);
// Outage-aware overload: a crash forces the chassis off for the window
// (one forced power cycle); the server restarts — and is back on — at the
// window's end.
ChassisUsage chassis_usage(const double* request_times_s, std::size_t n,
                           double duration_s, double off_idle_s,
                           const OutageWindows& outages);
ChassisUsage chassis_usage(const std::vector<double>& request_times_s,
                           double duration_s, double off_idle_s,
                           const OutageWindows& outages);

}  // namespace jpm::cluster
