// Server-cluster extension (paper Sections II-B and VI): the joint method
// deployed across a cluster, combined with the request-distribution schemes
// the paper cites (Pinheiro et al.'s workload unbalancing, Rajamani &
// Lefurgy's request distribution).
//
// The cluster layer splits one request stream across servers at request
// granularity, runs each server's full memory+disk pipeline independently
// (replaying its sub-trace through the standard engine), and adds
// chassis-level power accounting: a server whose request stream goes quiet
// long enough can be switched off entirely — the cluster-scale analogue of
// the disk timeout.
//
// Distribution policies:
//   * kRoundRobin   — requests rotate across servers; every cache sees the
//                     whole working set (maximal duplication).
//   * kPartitioned  — content partitioning by on-disk extent; each server
//                     caches only its share (no duplication, load follows
//                     data popularity).
//   * kUnbalanced   — concentrate requests on the fewest servers that stay
//                     under a rate cap; surplus servers idle and power off.
#pragma once

#include <cstdint>
#include <vector>

#include "jpm/sim/engine.h"

namespace jpm::cluster {

enum class DistributionPolicy { kRoundRobin, kPartitioned, kUnbalanced };

struct ClusterConfig {
  std::uint32_t server_count = 2;
  DistributionPolicy distribution = DistributionPolicy::kPartitioned;
  // Per-server engine configuration (memory size, disk, joint constants).
  sim::EngineConfig engine;
  // Content-partition extent for kPartitioned, in pages.
  std::uint64_t partition_pages = 256;
  // kUnbalanced: per-server request-rate cap (requests/s over the EWMA
  // window) before spilling to the next server.
  double rate_cap_rps = 400.0;
  double rate_ewma_tau_s = 60.0;
  // Chassis power: consumed by a server that is on (fans, CPU idle, PSU),
  // on top of the memory and disk the engines account. Zero by default so
  // memory+disk comparisons match the single-server benches.
  double chassis_on_w = 0.0;
  double chassis_off_w = 0.0;
  // A server with no requests for this long powers off until its next
  // request (kUnbalanced-style consolidation makes such windows long).
  double server_off_idle_s = 600.0;
  double server_boot_s = 30.0;  // unavailable time on power-up

  // Rejects nonsensical cluster configurations (zero server_count, zero
  // partition_pages, negative powers/intervals) with a descriptive
  // std::invalid_argument. The nested engine config is validated by the
  // engines themselves.
  void validate() const;
};

struct ServerOutcome {
  sim::RunMetrics metrics;      // memory + disk pipeline results
  std::uint64_t requests = 0;   // requests routed to this server
  double chassis_on_s = 0.0;
  double chassis_energy_j = 0.0;
  std::uint64_t power_cycles = 0;
};

struct ClusterMetrics {
  std::vector<ServerOutcome> servers;
  double duration_s = 0.0;
  // Aggregated fault-injection outcome: per-server pipeline counters merged
  // with cluster-level crash and failover counts (all-zero without faults).
  fault::ReliabilityMetrics reliability;

  double pipeline_energy_j() const;  // sum of memory+disk energy
  double chassis_energy_j() const;
  double total_j() const { return pipeline_energy_j() + chassis_energy_j(); }
  std::uint64_t total_requests() const;
  double mean_latency_s() const;
  double long_latency_per_s() const;
  // Jain's fairness index over per-server request counts: 1 = perfectly
  // balanced, 1/n = fully concentrated.
  double balance_index() const;
};

class ClusterEngine {
 public:
  ClusterEngine(const ClusterConfig& config,
                const workload::SynthesizerConfig& workload,
                const sim::PolicySpec& policy);

  // Splits the workload, replays every server, and aggregates.
  ClusterMetrics run();

 private:
  ClusterConfig config_;
  workload::SynthesizerConfig workload_;
  sim::PolicySpec policy_;
};

// Routing decision sequence for a request stream (exposed for testing).
std::vector<std::uint32_t> route_requests(
    const std::vector<workload::TraceEvent>& trace, const ClusterConfig& cfg);

// Per-server crash outage windows, sorted and disjoint.
using OutageWindows = std::vector<std::pair<double, double>>;

// Fault-aware routing: requests whose home server is inside an outage
// window re-route to the next surviving server in ring order (with every
// server down the home server keeps the request). Continuations follow
// their request's route — connections opened before a crash drain on the
// original server. Exposed for testing.
struct FaultRouting {
  std::vector<std::uint32_t> routes;
  std::uint64_t failed_over_requests = 0;
};
FaultRouting route_requests_with_faults(
    const std::vector<workload::TraceEvent>& trace, const ClusterConfig& cfg,
    const std::vector<OutageWindows>& outages);

// Chassis on/off accounting over one server's request arrival times.
struct ChassisUsage {
  double on_s = 0.0;
  std::uint64_t power_cycles = 0;
};
ChassisUsage chassis_usage(const std::vector<double>& request_times_s,
                           double duration_s, double off_idle_s);
// Outage-aware overload: a crash forces the chassis off for the window
// (one forced power cycle); the server restarts — and is back on — at the
// window's end.
ChassisUsage chassis_usage(const std::vector<double>& request_times_s,
                           double duration_s, double off_idle_s,
                           const OutageWindows& outages);

}  // namespace jpm::cluster
