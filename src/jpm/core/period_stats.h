// Per-period observation record feeding the joint power manager.
//
// During each period the engine records, for every disk-cache access, its
// timestamp and LRU stack depth (from the extended LRU list). At the period
// boundary the collector hands the joint manager everything Section IV needs:
// the per-unit depth counters (miss curve), the raw events for the idle-
// interval sweep, and measured disk-side aggregates for calibration.
#pragma once

#include <cstdint>
#include <vector>

#include "jpm/cache/idle_sweep.h"
#include "jpm/cache/miss_curve.h"
#include "jpm/util/check.h"

namespace jpm::core {

struct PeriodStats {
  double start_s = 0.0;
  double end_s = 0.0;
  // Every cache access, time-ordered, in SoA layout (timestamps and depths
  // as separate lanes — see cache::IdleSeries).
  cache::IdleSeries events;
  cache::MissCurve curve{1, 1};
  std::uint64_t cache_accesses = 0;
  std::uint64_t cold_accesses = 0;
  // Measured during the period (for service-time calibration).
  std::uint64_t actual_disk_accesses = 0;
  double disk_busy_s = 0.0;
  // Accesses that had to wait for a spin-up — the paper's "delayed
  // requests"; feeds the manager's observed delayed-ratio guard.
  std::uint64_t delayed_requests = 0;

  double duration_s() const { return end_s - start_s; }
  // Mean measured service time per disk access; 0 when no disk access.
  double mean_service_s() const {
    return actual_disk_accesses == 0
               ? 0.0
               : disk_busy_s / static_cast<double>(actual_disk_accesses);
  }
};

class PeriodStatsCollector {
 public:
  PeriodStatsCollector(std::uint64_t unit_frames, std::uint64_t max_units,
                       double start_s);

  // Per-access hot path: append to the SoA lanes and nothing else. The
  // miss-curve counters and the cold/total tallies are all pure functions
  // of the depth lane, so harvest() computes them in one streaming pass at
  // the period boundary instead of adding histogram work (and its bounds
  // branches) to every event.
  JPM_FORCE_INLINE void on_access(double t, std::uint64_t depth_frames) {
    current_.events.push_back(t, depth_frames);
  }
  void on_disk_access(double service_s, bool delayed = false);

  // Pre-sizes the current period's event lanes (replay runs know the event
  // count up front) so the per-access push never reallocates mid-run; later
  // periods inherit capacity through recycle(). Purely an allocation hint.
  void reserve_events(std::size_t n) { current_.events.reserve(n); }

  // Closes the period at `end_s` and returns its stats; collection restarts
  // immediately for the next period.
  PeriodStats harvest(double end_s);

  // Hands a consumed PeriodStats back so its event-lane capacity seeds the
  // next harvest instead of being freed — periods tend to have similar
  // access counts, so this removes the per-period reallocation ramp. Values
  // are fully reset before reuse; purely an allocation optimization.
  void recycle(PeriodStats&& used);

  std::uint64_t unit_frames() const { return unit_frames_; }
  std::uint64_t max_units() const { return max_units_; }

 private:
  std::uint64_t unit_frames_;
  std::uint64_t max_units_;
  PeriodStats current_;
  PeriodStats spare_;  // recycled storage for the next period
};

}  // namespace jpm::core
