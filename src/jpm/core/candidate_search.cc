#include "jpm/core/candidate_search.h"

#include <algorithm>
#include <cmath>

#include "jpm/pareto/pareto.h"
#include "jpm/pareto/timeout_math.h"
#include "jpm/telemetry/telemetry.h"
#include "jpm/util/check.h"

namespace jpm::core {
namespace {

// Candidate sizes: 1 unit, every size at which the miss count changes, and
// full physical memory.
std::vector<std::uint64_t> candidate_units(const PeriodStats& stats,
                                           const JointConfig& config) {
  std::vector<std::uint64_t> units = stats.curve.distinct_sizes();
  if (units.empty() || units.front() != 1) {
    units.insert(units.begin(), 1);
  }
  const std::uint64_t max_units = config.max_units();
  units.erase(std::remove_if(units.begin(), units.end(),
                             [max_units](std::uint64_t u) {
                               return u > max_units;
                             }),
              units.end());
  if (units.empty() || units.back() != max_units) units.push_back(max_units);
  return units;
}

}  // namespace

SearchResult search_candidates(const PeriodStats& stats,
                               const JointConfig& config,
                               double fallback_service_s) {
  JPM_CHECK(config.period_s > 0.0);
  JPM_CHECK(config.window_s > 0.0);
  JPM_CHECK(fallback_service_s > 0.0);
  const double T = config.period_s;
  const auto disk_params = config.disk.timeout_params();
  const double pd = disk_params.static_power_w;

  const double service_s = stats.actual_disk_accesses > 0
                               ? stats.mean_service_s()
                               : fallback_service_s;

  const auto units = candidate_units(stats, config);
  const auto idle = cache::sweep_idle_intervals(
      stats.events, stats.start_s, stats.end_s, config.unit_frames(),
      config.window_s, units);
  JPM_CHECK(idle.size() == units.size());

  // Memory dynamic energy is the same at every size: every cache access
  // touches memory once, every (predicted) disk access additionally fills a
  // page. We price the access part here and the per-candidate fill below.
  const double mem_dyn_per_access =
      config.mem.dynamic_energy_j(config.page_bytes);

  SearchResult result;
  result.candidates.reserve(units.size());

  for (std::size_t i = 0; i < units.size(); ++i) {
    const auto& est = idle[i];
    Candidate c;
    c.memory_units = est.memory_units;
    c.disk_accesses = est.disk_accesses;
    c.idle_intervals = est.idle_intervals;
    c.mean_idle_s = est.mean_idle_s;

    const double n_d = static_cast<double>(est.disk_accesses);
    const double n_i = static_cast<double>(est.idle_intervals);
    const double N = static_cast<double>(stats.cache_accesses);

    // Disk utilization this size would sustain.
    c.predicted_util = n_d * service_s / T;

    // Timeout selection.
    double disk_static_power;  // expected p_d-band power incl. transitions
    if (est.idle_intervals == 0 || est.mean_idle_s <= config.window_s) {
      // No usable idleness: keep the disk on.
      c.timeout_s = pareto::kNeverTimeout;
      c.alpha = 0.0;
      c.predicted_delay_ratio = 0.0;
      disk_static_power = pd;
    } else {
      const double alpha =
          config.alpha_estimator == AlphaEstimator::kMle
              ? pareto::estimate_alpha_mle_from_sums(
                    est.idle_intervals, est.log_idle_sum, config.window_s)
              : pareto::estimate_alpha_from_mean(est.mean_idle_s,
                                                 config.window_s);
      const pareto::ParetoDistribution dist(alpha, config.window_s);
      c.alpha = dist.alpha();
      double t_opt;
      switch (config.timeout_rule) {
        case TimeoutRule::kExponential:
          // Memoryless idleness: expected remaining idle equals the mean at
          // every instant, so spin down right away iff the mean beats the
          // break-even time — there is no interior optimum.
          t_opt = est.mean_idle_s > disk_params.break_even_s
                      ? 0.0
                      : pareto::kNeverTimeout;
          break;
        case TimeoutRule::kTwoCompetitive:
          t_opt = disk_params.break_even_s;
          break;
        case TimeoutRule::kPareto:
        default:
          t_opt = pareto::optimal_timeout(dist, disk_params);
          break;
      }
      const double t_min = pareto::min_timeout_for_delay_constraint(
          dist, n_i, n_d, N, T, config.delay_limit, disk_params);
      double t_o = std::max(t_opt, t_min);
      double power = pareto::expected_power(dist, n_i, T, t_o, disk_params);
      if (power >= pd) {
        // The constrained timeout saves nothing over staying on.
        t_o = pareto::kNeverTimeout;
        power = pd;
      }
      c.timeout_s = t_o;
      c.predicted_delay_ratio = pareto::expected_delayed_ratio(
          dist, n_i, n_d, N, T, t_o, disk_params);
      disk_static_power = power;
    }

    // Energy model over one period.
    c.mem_static_j =
        config.mem.nap_power_w(c.memory_units * config.unit_bytes) * T;
    const double mem_dynamic_j = (N + n_d) * mem_dyn_per_access;
    c.disk_static_transition_j =
        (disk_static_power + config.disk.standby_w) * T;
    c.disk_dynamic_j = n_d * service_s * config.disk.dynamic_power_w();
    c.predicted_energy_j = c.mem_static_j + mem_dynamic_j +
                           c.disk_static_transition_j + c.disk_dynamic_j;

    c.feasible = c.predicted_util <= config.util_limit &&
                 c.predicted_delay_ratio <= config.delay_limit;
    result.candidates.push_back(c);
  }

  // Feasible minimum energy; ties favor smaller memory (earlier candidate).
  const Candidate* best = nullptr;
  for (const auto& c : result.candidates) {
    if (!c.feasible) continue;
    if (best == nullptr || c.predicted_energy_j < best->predicted_energy_j) {
      best = &c;
    }
  }
  result.any_feasible = best != nullptr;
  if (best == nullptr) {
    // Nothing satisfies the constraints; minimize utilization (and within
    // that, energy) — the largest memory gives the fewest disk accesses.
    for (const auto& c : result.candidates) {
      if (best == nullptr || c.predicted_util < best->predicted_util ||
          (c.predicted_util == best->predicted_util &&
           c.predicted_energy_j < best->predicted_energy_j)) {
        best = &c;
      }
    }
  }
  JPM_CHECK(best != nullptr);
  result.chosen = *best;

  TELEM_EVENT(kManager, "search_done", stats.end_s,
              {"candidates", static_cast<double>(result.candidates.size())},
              {"any_feasible", result.any_feasible ? 1.0 : 0.0},
              {"chosen_units", static_cast<double>(result.chosen.memory_units)},
              {"predicted_j", result.chosen.predicted_energy_j});
  return result;
}

const Candidate* runner_up(const SearchResult& result) {
  if (result.candidates.size() < 2) return nullptr;
  const auto is_other = [&](const Candidate& c) {
    return c.memory_units != result.chosen.memory_units ||
           c.timeout_s != result.chosen.timeout_s;
  };
  const Candidate* best = nullptr;
  for (int feasible_pass = 1; feasible_pass >= 0; --feasible_pass) {
    for (const auto& c : result.candidates) {
      if (!is_other(c)) continue;
      if (c.feasible != (feasible_pass == 1)) continue;
      if (best == nullptr || c.predicted_energy_j < best->predicted_energy_j) {
        best = &c;
      }
    }
    if (best != nullptr) break;  // prefer feasible runners-up
  }
  return best;
}

}  // namespace jpm::core
