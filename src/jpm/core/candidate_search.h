// Candidate (memory size, disk timeout) search — paper Sections IV-B..IV-D.
//
// For every memory size that would produce a distinct number of disk accesses
// (the paper's enumeration pruning), the search:
//   1. predicts disk accesses from the miss curve and idle intervals from the
//      sweep (Section IV-B),
//   2. fits a Pareto distribution to the predicted idle intervals and derives
//      the energy-optimal timeout t_o = alpha * t_be (eq. 5),
//   3. raises the timeout to the performance-constrained lower bound from
//      eq. 6, falling back to "never spin down" when the constrained timeout
//      would cost more than staying on,
//   4. prices the candidate: memory static + memory dynamic + disk
//      static/transition (eq. 4) + disk dynamic,
//   5. enforces the utilization limit U and the delayed-request limit D.
// The feasible minimum-energy candidate wins; if none is feasible the search
// returns the utilization-minimizing (largest-memory) candidate, which is the
// best the hardware can do.
#pragma once

#include <cstdint>
#include <vector>

#include "jpm/core/period_stats.h"
#include "jpm/disk/disk_model.h"
#include "jpm/mem/rdram_model.h"

namespace jpm::core {

// How the idle-distribution shape parameter is estimated (ablation knob;
// the paper uses the moment estimator alpha = mean / (mean - beta)).
enum class AlphaEstimator { kMoment, kMle };

// How the period's disk timeout is derived from the fitted idle model
// (ablation knob; the paper uses the Pareto rule of eq. 5).
enum class TimeoutRule {
  kPareto,          // t_o = alpha * t_be (eq. 5)
  kExponential,     // memoryless model: spin down immediately iff the mean
                    // idle exceeds t_be, otherwise never
  kTwoCompetitive,  // fixed t_o = t_be regardless of the fit
};

struct JointConfig {
  double period_s = 600.0;       // T
  double window_s = 0.1;         // w: idle aggregation window == Pareto beta
  double util_limit = 0.10;      // U
  double delay_limit = 1e-3;     // D
  std::uint64_t page_bytes = 256 * kKiB;
  std::uint64_t unit_bytes = 16 * kMiB;   // enumeration unit (= bank)
  std::uint64_t physical_bytes = 128 * kGiB;
  AlphaEstimator alpha_estimator = AlphaEstimator::kMoment;
  TimeoutRule timeout_rule = TimeoutRule::kPareto;
  mem::RdramParams mem;
  disk::DiskParams disk;

  std::uint64_t unit_frames() const { return unit_bytes / page_bytes; }
  std::uint64_t max_units() const { return physical_bytes / unit_bytes; }
};

struct Candidate {
  std::uint64_t memory_units = 0;
  double timeout_s = 0.0;            // may be pareto::kNeverTimeout
  double predicted_energy_j = 0.0;   // total over one period
  double mem_static_j = 0.0;
  double disk_static_transition_j = 0.0;
  double disk_dynamic_j = 0.0;
  double predicted_util = 0.0;
  double predicted_delay_ratio = 0.0;
  double alpha = 0.0;                // fitted Pareto shape (0 if no idleness)
  std::uint64_t disk_accesses = 0;
  std::uint64_t idle_intervals = 0;
  double mean_idle_s = 0.0;
  bool feasible = false;
};

struct SearchResult {
  Candidate chosen;
  std::vector<Candidate> candidates;  // every size evaluated, ascending
  bool any_feasible = false;
};

// `fallback_service_s` estimates per-access disk service time when the last
// period had no disk accesses (use the model's random single-page read).
SearchResult search_candidates(const PeriodStats& stats,
                               const JointConfig& config,
                               double fallback_service_s);

// The best candidate that was NOT chosen: lowest predicted energy among the
// other feasible candidates, or among all others when none is feasible.
// Returns nullptr when the search evaluated fewer than two sizes. Used by
// telemetry to report how close the decision was.
const Candidate* runner_up(const SearchResult& result);

}  // namespace jpm::core
