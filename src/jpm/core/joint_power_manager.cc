#include "jpm/core/joint_power_manager.h"

#include "jpm/util/check.h"

namespace jpm::core {

JointPowerManager::JointPowerManager(const JointConfig& config)
    : config_(config) {
  JPM_CHECK(config.page_bytes > 0);
  JPM_CHECK(config.unit_bytes % config.page_bytes == 0);
  JPM_CHECK(config.physical_bytes % config.unit_bytes == 0);
  // Random single-page read: the calibration floor when a period saw no
  // disk traffic at all.
  fallback_service_s_ = disk::ServiceModel(config.disk)
                            .service_time_s(config.page_bytes,
                                            /*sequential=*/false);
}

std::uint64_t JointPowerManager::initial_memory_units() const {
  return config_.max_units();
}

double JointPowerManager::initial_timeout_s() const {
  return config_.disk.break_even_s();
}

const JointDecision& JointPowerManager::on_period_end(
    const PeriodStats& stats) {
  JointDecision d;
  d.at_s = stats.end_s;
  d.detail = search_candidates(stats, config_, fallback_service_s_);
  d.memory_units = d.detail.chosen.memory_units;
  d.memory_bytes = d.memory_units * config_.unit_bytes;
  d.timeout_s = d.detail.chosen.timeout_s;
  decisions_.push_back(std::move(d));
  return decisions_.back();
}

}  // namespace jpm::core
