#include "jpm/core/joint_power_manager.h"

#include <algorithm>
#include <cmath>

#include "jpm/telemetry/registry.h"
#include "jpm/telemetry/telemetry.h"
#include "jpm/util/check.h"

namespace jpm::core {

JointPowerManager::JointPowerManager(const JointConfig& config)
    : JointPowerManager(config, fault::ManagerGuardConfig{}) {}

JointPowerManager::JointPowerManager(const JointConfig& config,
                                     const fault::ManagerGuardConfig& guard)
    : config_(config), guard_(guard) {
  JPM_CHECK(config.page_bytes > 0);
  JPM_CHECK(config.unit_bytes % config.page_bytes == 0);
  JPM_CHECK(config.physical_bytes % config.unit_bytes == 0);
  // Random single-page read: the calibration floor when a period saw no
  // disk traffic at all.
  fallback_service_s_ = disk::ServiceModel(config.disk)
                            .service_time_s(config.page_bytes,
                                            /*sequential=*/false);
}

std::uint64_t JointPowerManager::initial_memory_units() const {
  return config_.max_units();
}

double JointPowerManager::initial_timeout_s() const {
  return config_.disk.break_even_s();
}

bool JointPowerManager::stats_usable(const PeriodStats& stats) const {
  const double dur = stats.duration_s();
  if (!std::isfinite(dur) || dur < 0.0) return false;
  if (!std::isfinite(stats.disk_busy_s) || stats.disk_busy_s < 0.0) {
    return false;
  }
  return true;
}

bool JointPowerManager::decision_usable(const JointDecision& d) const {
  if (d.memory_units == 0 || d.memory_units > config_.max_units()) {
    return false;
  }
  // kNeverTimeout is +inf and legitimate; NaN or negative timeouts are not.
  if (std::isnan(d.timeout_s) || d.timeout_s < 0.0) return false;
  if (std::isnan(d.detail.chosen.alpha) ||
      !std::isfinite(d.detail.chosen.predicted_energy_j)) {
    return false;
  }
  return true;
}

void JointPowerManager::apply_fallback(JointDecision& d) {
  d.memory_units = config_.max_units();
  d.memory_bytes = d.memory_units * config_.unit_bytes;
  d.timeout_s = config_.disk.break_even_s();
  ++reliability_.manager_fallbacks;
}

const JointDecision& JointPowerManager::on_period_end(
    const PeriodStats& stats) {
  const std::uint64_t fallbacks_before = reliability_.manager_fallbacks;
  JointDecision d;
  d.at_s = stats.end_s;
  if (forced_fallback_) {
    // Overload posture: no search, no guard arithmetic — the stream layer
    // owns the decision until the ring drops below its low watermark.
    d.memory_units = config_.max_units();
    d.memory_bytes = d.memory_units * config_.unit_bytes;
    d.timeout_s = config_.disk.break_even_s();
    ++reliability_.forced_fallbacks;
    TELEM_EVENT(kManager, "forced_fallback", d.at_s,
                {"memory_units", static_cast<double>(d.memory_units)},
                {"timeout_s", d.timeout_s});
    decisions_.push_back(std::move(d));
    return decisions_.back();
  }
  if (!stats_usable(stats)) {
    apply_fallback(d);
  } else {
    bool ok = true;
    try {
      d.detail = search_candidates(stats, config_, fallback_service_s_);
      d.memory_units = d.detail.chosen.memory_units;
      d.memory_bytes = d.memory_units * config_.unit_bytes;
      d.timeout_s = d.detail.chosen.timeout_s;
    } catch (const CheckError&) {
      ok = false;
    }
    if (!ok || !decision_usable(d)) apply_fallback(d);
  }

  if (guard_.enabled) {
    // Closed loop on the *observed* constraints of the period just finished
    // (the search only enforces them on predictions). A violation backs the
    // timeout off multiplicatively and pins memory at the maximum; clean
    // periods relax the scale back toward the open loop.
    const double dur = stats.duration_s();
    bool violated = false;
    if (dur > 0.0) {
      const double util = stats.disk_busy_s / dur;
      const double delayed_ratio =
          stats.cache_accesses == 0
              ? 0.0
              : static_cast<double>(stats.delayed_requests) /
                    static_cast<double>(stats.cache_accesses);
      violated =
          util > config_.util_limit || delayed_ratio > config_.delay_limit;
    }
    if (violated) {
      ++reliability_.violated_periods;
      if (guard_scale_ < guard_.max_scale) {
        guard_scale_ =
            std::min(guard_scale_ * guard_.backoff_factor, guard_.max_scale);
        ++reliability_.guard_backoffs;
        TELEM_EVENT(kManager, "guard_backoff", stats.end_s,
                    {"scale", guard_scale_});
      }
    } else {
      guard_scale_ = std::max(1.0, guard_scale_ / guard_.relax_factor);
    }
    if (guard_scale_ > 1.0) {
      d.memory_units = config_.max_units();
      d.memory_bytes = d.memory_units * config_.unit_bytes;
      d.timeout_s =
          std::max(d.timeout_s, config_.disk.break_even_s()) * guard_scale_;
    }
  }

  record_decision_telemetry(d, fallbacks_before);
  decisions_.push_back(std::move(d));
  return decisions_.back();
}

// Per-period decision log: chosen candidate's predicted energy next to the
// runner-up's, so a report shows how close each decision was; realized
// energy lives in the engine's "periods" table (same period index).
void JointPowerManager::record_decision_telemetry(
    const JointDecision& d, std::uint64_t fallbacks_before) const {
  if (!telemetry::enabled()) return;
  telemetry::RunRecorder* rec = telemetry::current_run();
  if (rec == nullptr) return;
  const bool fell_back = reliability_.manager_fallbacks != fallbacks_before;
  const Candidate* ru = runner_up(d.detail);
  rec->table("decisions",
             {"at_s", "memory_units", "timeout_s", "predicted_j", "alpha",
              "predicted_util", "predicted_delay_ratio", "candidates",
              "any_feasible", "fallback", "runner_up_units",
              "runner_up_timeout_s", "runner_up_predicted_j"})
      .add_row({d.at_s, static_cast<double>(d.memory_units), d.timeout_s,
                d.detail.chosen.predicted_energy_j, d.detail.chosen.alpha,
                d.detail.chosen.predicted_util,
                d.detail.chosen.predicted_delay_ratio,
                static_cast<double>(d.detail.candidates.size()),
                d.detail.any_feasible ? 1.0 : 0.0, fell_back ? 1.0 : 0.0,
                ru == nullptr ? -1.0 : static_cast<double>(ru->memory_units),
                ru == nullptr ? -1.0 : ru->timeout_s,
                ru == nullptr ? -1.0 : ru->predicted_energy_j});
  if (fell_back) {
    TELEM_EVENT(kManager, "manager_fallback", d.at_s,
                {"memory_units", static_cast<double>(d.memory_units)},
                {"timeout_s", d.timeout_s});
  }
}

}  // namespace jpm::core
