#include "jpm/core/period_stats.h"

#include <utility>

#include "jpm/util/check.h"

namespace jpm::core {

PeriodStatsCollector::PeriodStatsCollector(std::uint64_t unit_frames,
                                           std::uint64_t max_units,
                                           double start_s)
    : unit_frames_(unit_frames), max_units_(max_units) {
  JPM_CHECK(unit_frames > 0);
  JPM_CHECK(max_units > 0);
  current_.start_s = start_s;
  current_.curve = cache::MissCurve(unit_frames, max_units);
}

void PeriodStatsCollector::on_disk_access(double service_s, bool delayed) {
  ++current_.actual_disk_accesses;
  current_.disk_busy_s += service_s;
  if (delayed) ++current_.delayed_requests;
}

PeriodStats PeriodStatsCollector::harvest(double end_s) {
  JPM_CHECK(end_s >= current_.start_s);
  current_.end_s = end_s;
  // Fold the depth lane into the miss curve here, off the per-event path.
  // Identical adds in the same order as the old per-access accumulation.
  for (const std::uint64_t d : current_.events.depths) current_.curve.add(d);
  current_.cache_accesses = current_.events.size();
  current_.cold_accesses = current_.curve.cold_accesses();
  PeriodStats out = std::move(current_);
  current_ = std::move(spare_);
  spare_ = PeriodStats{};
  current_.events.clear();  // keeps recycled capacity
  current_.start_s = end_s;
  current_.end_s = 0.0;
  current_.cache_accesses = 0;
  current_.cold_accesses = 0;
  current_.actual_disk_accesses = 0;
  current_.disk_busy_s = 0.0;
  current_.delayed_requests = 0;
  current_.curve = cache::MissCurve(unit_frames_, max_units_);
  return out;
}

void PeriodStatsCollector::recycle(PeriodStats&& used) {
  spare_ = std::move(used);
}

}  // namespace jpm::core
