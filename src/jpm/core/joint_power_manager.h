// The joint power manager (paper Fig. 2).
//
// Every period T it consumes the previous period's statistics, runs the
// candidate search, and emits the memory size and disk timeout to apply for
// the coming period. The extended LRU list itself lives in the engine
// (StackDistanceTracker) and is deliberately *not* reset between periods —
// the paper's sensitivity analysis (Table IV) relies on the list persisting
// so the miss-curve estimate is insensitive to the period length.
#pragma once

#include <cstdint>
#include <vector>

#include "jpm/core/candidate_search.h"
#include "jpm/core/period_stats.h"

namespace jpm::core {

struct JointDecision {
  double at_s = 0.0;             // period boundary the decision applies from
  std::uint64_t memory_units = 0;
  std::uint64_t memory_bytes = 0;
  double timeout_s = 0.0;
  SearchResult detail;
};

class JointPowerManager {
 public:
  explicit JointPowerManager(const JointConfig& config);

  // Startup posture before any statistics exist: all memory, 2-competitive
  // timeout (the conservative defaults the comparison methods also use).
  std::uint64_t initial_memory_units() const;
  double initial_timeout_s() const;

  // Called at each period boundary with the period just finished.
  const JointDecision& on_period_end(const PeriodStats& stats);

  const JointConfig& config() const { return config_; }
  const std::vector<JointDecision>& decisions() const { return decisions_; }

 private:
  JointConfig config_;
  double fallback_service_s_;
  std::vector<JointDecision> decisions_;
};

}  // namespace jpm::core
