// The joint power manager (paper Fig. 2).
//
// Every period T it consumes the previous period's statistics, runs the
// candidate search, and emits the memory size and disk timeout to apply for
// the coming period. The extended LRU list itself lives in the engine
// (StackDistanceTracker) and is deliberately *not* reset between periods —
// the paper's sensitivity analysis (Table IV) relies on the list persisting
// so the miss-curve estimate is insensitive to the period length.
#pragma once

#include <cstdint>
#include <vector>

#include "jpm/core/candidate_search.h"
#include "jpm/core/period_stats.h"
#include "jpm/fault/fault.h"

namespace jpm::core {

struct JointDecision {
  double at_s = 0.0;             // period boundary the decision applies from
  std::uint64_t memory_units = 0;
  std::uint64_t memory_bytes = 0;
  double timeout_s = 0.0;
  SearchResult detail;
};

class JointPowerManager {
 public:
  explicit JointPowerManager(const JointConfig& config);
  // Variant with the closed-loop constraint guard (fault-injected engines
  // enable it through FaultPlan::guard; disabled == the paper's open loop).
  JointPowerManager(const JointConfig& config,
                    const fault::ManagerGuardConfig& guard);

  // Startup posture before any statistics exist: all memory, 2-competitive
  // timeout (the conservative defaults the comparison methods also use).
  std::uint64_t initial_memory_units() const;
  double initial_timeout_s() const;

  // Called at each period boundary with the period just finished.
  //
  // Robustness: the statistics and the search result are validated first;
  // non-finite inputs, an out-of-range result, or a search failure
  // (CheckError) fall back to the conservative startup posture instead of
  // propagating garbage into the coming period. When the guard is enabled,
  // a finished period that *observed* a utilization or delayed-ratio
  // violation additionally backs the timeout off multiplicatively
  // (recovering within a bounded number of clean periods).
  const JointDecision& on_period_end(const PeriodStats& stats);

  // Overload degradation (jpm::stream `degrade` policy): while engaged,
  // every boundary skips the candidate search entirely and applies the
  // conservative startup posture — all memory, 2-competitive timeout —
  // so the manager costs O(1) per period until the ingress ring recovers.
  // Counted separately from error fallbacks in reliability().
  void set_forced_fallback(bool on) { forced_fallback_ = on; }
  bool forced_fallback() const { return forced_fallback_; }

  const JointConfig& config() const { return config_; }
  const std::vector<JointDecision>& decisions() const { return decisions_; }
  const fault::ReliabilityMetrics& reliability() const {
    return reliability_;
  }
  // Current guard timeout multiplier (1 == open loop); exposed for tests.
  double guard_scale() const { return guard_scale_; }

 private:
  bool stats_usable(const PeriodStats& stats) const;
  bool decision_usable(const JointDecision& d) const;
  void apply_fallback(JointDecision& d);
  void record_decision_telemetry(const JointDecision& d,
                                 std::uint64_t fallbacks_before) const;

  JointConfig config_;
  bool forced_fallback_ = false;
  double fallback_service_s_;
  fault::ManagerGuardConfig guard_;
  double guard_scale_ = 1.0;
  fault::ReliabilityMetrics reliability_;
  std::vector<JointDecision> decisions_;
};

}  // namespace jpm::core
