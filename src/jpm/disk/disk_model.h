// Hard-disk parameters and analytic service model (DiskSim substitute).
//
// Power constants follow the paper's Seagate 3.5" IDE drive (Fig. 1b):
// active 12.5 W, idle 7.5 W, standby/sleep 0.9 W, 77.5 J per idle->standby->
// idle round trip, t_tr = 10 s. The manageable static power is
// p_d = 7.5 - 0.9 = 6.6 W and the break-even time 77.5/6.6 = 11.7 s.
//
// Service times use a seek + rotation + media-transfer model with sequential
// run detection (a request for the page following the previously served page
// skips the positioning cost) — enough to reproduce the paper's bandwidth-
// vs-request-size table and its ~10 MB/s random-access data rate.
#pragma once

#include <cstdint>

#include "jpm/pareto/timeout_math.h"

namespace jpm::disk {

struct DiskParams {
  // Power model.
  double active_w = 12.5;
  double idle_w = 7.5;
  double standby_w = 0.9;
  double transition_j = 77.5;  // idle -> standby -> idle round trip
  double spin_up_s = 10.0;     // t_tr: user-visible turn-on delay

  // Service model.
  double avg_seek_s = 8.0e-3;
  double avg_rotation_s = 4.16e-3;  // half revolution at 7200 rpm
  double media_rate_bytes_per_s = 58.0e6;

  // Manageable static power p_d (idle minus standby).
  double static_power_w() const { return idle_w - standby_w; }
  // Dynamic power at peak bandwidth (active minus idle).
  double dynamic_power_w() const { return active_w - idle_w; }
  // Break-even time t_be = transition energy / p_d. Meaningless (division by
  // zero or negative) unless idle_w > standby_w — validate() rejects such
  // parameter sets where configurations are built.
  double break_even_s() const { return transition_j / static_power_w(); }
  double positioning_s() const { return avg_seek_s + avg_rotation_s; }

  // Rejects parameter sets that would silently corrupt the timeout math
  // (idle_w <= standby_w makes break_even_s() divide by zero or go
  // negative) or the service model. Throws std::invalid_argument with a
  // descriptive message; called wherever disks and managers are built.
  void validate() const;

  // View consumed by the Pareto timeout math.
  pareto::DiskTimeoutParams timeout_params() const {
    return pareto::DiskTimeoutParams{static_power_w(), break_even_s(),
                                     spin_up_s};
  }
};

// Device-class presets. The paper's evaluation is the 3.5" server IDE drive
// (the default DiskParams); the others put its conclusions in context —
// spin-down economics depend entirely on the transition cost vs. the
// manageable static power.
namespace presets {

// The paper's Seagate Barracuda-class 3.5" IDE drive (DiskParams defaults).
DiskParams server_ide();

// 2.5" laptop drive (the DATE'05 lineage's mobile context): smaller static
// power, much cheaper and faster spin-up, so aggressive timeouts pay off.
DiskParams laptop_25();

// Flash/SSD-like device: near-zero positioning and transition costs and a
// static draw close to its floor — the regime where spin-down is obsolete
// and the joint method's value collapses onto memory sizing alone.
DiskParams ssd_like();

}  // namespace presets

class ServiceModel {
 public:
  explicit ServiceModel(const DiskParams& params) : params_(params) {}

  // Service time of one transfer; sequential transfers skip positioning.
  double service_time_s(std::uint64_t bytes, bool sequential) const {
    const double xfer =
        static_cast<double>(bytes) / params_.media_rate_bytes_per_s;
    return sequential ? xfer : params_.positioning_s() + xfer;
  }

  // Effective bandwidth for random requests of a given size — the paper's
  // DiskSim-derived "bandwidth table indexed by request sizes".
  double bandwidth_bytes_per_s(std::uint64_t request_bytes) const {
    return static_cast<double>(request_bytes) /
           service_time_s(request_bytes, /*sequential=*/false);
  }

  const DiskParams& params() const { return params_; }

 private:
  DiskParams params_;
};

}  // namespace jpm::disk
