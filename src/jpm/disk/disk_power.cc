#include "jpm/disk/disk_power.h"

#include <algorithm>

#include "jpm/util/check.h"

namespace jpm::disk {

DiskPowerMeter::DiskPowerMeter(const DiskParams& params, double start_time_s)
    : params_(params), start_time_s_(start_time_s), on_since_(start_time_s),
      finalized_at_(start_time_s) {}

void DiskPowerMeter::spin_down(double t) {
  JPM_CHECK_MSG(state_ == DiskState::kOn, "spin_down requires the on state");
  JPM_CHECK(t >= on_since_);
  on_time_s_ += t - on_since_;
  state_ = DiskState::kStandby;
  ++shutdowns_;
}

void DiskPowerMeter::begin_spin_up(double t) {
  JPM_CHECK_MSG(state_ == DiskState::kStandby,
                "begin_spin_up requires standby");
  (void)t;
  state_ = DiskState::kSpinningUp;
}

void DiskPowerMeter::complete_spin_up(double t) {
  JPM_CHECK_MSG(state_ == DiskState::kSpinningUp,
                "complete_spin_up requires an in-flight spin-up");
  state_ = DiskState::kOn;
  on_since_ = t;
}

void DiskPowerMeter::add_busy_time(double dt) {
  JPM_CHECK(dt >= 0.0);
  busy_time_s_ += dt;
}

void DiskPowerMeter::add_fault_transition(double joules) {
  JPM_CHECK(joules >= 0.0);
  fault_transition_j_ += joules;
}

void DiskPowerMeter::finalize(double t) {
  // `on_since_` can sit in the future relative to a mid-run snapshot when a
  // spin-up completion was booked eagerly; only integrate elapsed on-time.
  if (state_ == DiskState::kOn && t > on_since_) {
    on_time_s_ += t - on_since_;
    on_since_ = t;
  }
  finalized_at_ = std::max(finalized_at_, t);
}

DiskEnergyBreakdown DiskPowerMeter::breakdown() const {
  DiskEnergyBreakdown e;
  e.standby_base_j = params_.standby_w * (finalized_at_ - start_time_s_);
  e.static_j = params_.static_power_w() * on_time_s_;
  e.transition_j =
      params_.transition_j * static_cast<double>(shutdowns_) +
      fault_transition_j_;
  e.dynamic_j = params_.dynamic_power_w() * busy_time_s_;
  return e;
}

}  // namespace jpm::disk
