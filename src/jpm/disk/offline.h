// Offline analyses over a sequence of disk idle-interval lengths.
//
// The paper grounds its choice of the timeout family on Lu et al.'s
// quantitative comparison [16]: the 2-competitive timeout (t_o = t_be) is
// provably within 2x of the offline oracle, and adaptive/stochastic policies
// close part of the remaining gap. These helpers replay a policy over an
// explicit gap sequence and report the p_d-band energy (static power above
// standby plus transition energy), enabling exactly that comparison — see
// bench_timeout_policies.
//
// Energy accounting per gap of length L under timeout t_o:
//   L <= t_o:  p_d * L                     (disk stays on)
//   L  > t_o:  p_d * t_o + p_d * t_be      (on until timeout, one round trip)
// The oracle knows L in advance: min(p_d * L, p_d * t_be).
#pragma once

#include <vector>

#include "jpm/disk/timeout_policy.h"
#include "jpm/pareto/timeout_math.h"

namespace jpm::disk {

// Offline-optimal energy over the gaps (joules).
double oracle_energy_j(const std::vector<double>& gaps_s,
                       const pareto::DiskTimeoutParams& params);

// Energy of a fixed timeout over the gaps. timeout may be kNeverTimeout.
double fixed_timeout_energy_j(const std::vector<double>& gaps_s,
                              double timeout_s,
                              const pareto::DiskTimeoutParams& params);

// Energy of the Douglis adaptive policy replayed over the gaps: the timeout
// adapts after every spin-up, exactly as the online policy would.
double adaptive_timeout_energy_j(const std::vector<double>& gaps_s,
                                 const AdaptiveTimeoutConfig& config,
                                 const pareto::DiskTimeoutParams& params);

// Energy of the session-predictive policy replayed over the gaps: every gap
// (exploited or not) feeds its idle-length EWMA.
double predictive_timeout_energy_j(const std::vector<double>& gaps_s,
                                   const pareto::DiskTimeoutParams& params,
                                   double ewma_weight = 0.25);

// Energy of Karlin's randomized policy: a fresh timeout drawn per gap;
// e/(e-1)-competitive in expectation.
double randomized_timeout_energy_j(const std::vector<double>& gaps_s,
                                   const pareto::DiskTimeoutParams& params,
                                   std::uint64_t seed = 1);

// Competitive ratio of a policy's energy against the oracle (>= 1).
double competitive_ratio(double policy_energy_j, double oracle_energy_j);

}  // namespace jpm::disk
