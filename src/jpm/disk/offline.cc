#include "jpm/disk/offline.h"

#include <algorithm>
#include <cmath>

#include "jpm/util/check.h"

namespace jpm::disk {
namespace {

double gap_energy(double gap_s, double timeout_s,
                  const pareto::DiskTimeoutParams& params) {
  JPM_DCHECK(gap_s >= 0.0);
  if (std::isinf(timeout_s) || gap_s <= timeout_s) {
    return params.static_power_w * gap_s;
  }
  return params.static_power_w * (timeout_s + params.break_even_s);
}

}  // namespace

double oracle_energy_j(const std::vector<double>& gaps_s,
                       const pareto::DiskTimeoutParams& params) {
  double total = 0.0;
  for (double g : gaps_s) {
    JPM_CHECK(g >= 0.0);
    total += params.static_power_w * std::min(g, params.break_even_s);
  }
  return total;
}

double fixed_timeout_energy_j(const std::vector<double>& gaps_s,
                              double timeout_s,
                              const pareto::DiskTimeoutParams& params) {
  JPM_CHECK(timeout_s >= 0.0);
  double total = 0.0;
  for (double g : gaps_s) total += gap_energy(g, timeout_s, params);
  return total;
}

double adaptive_timeout_energy_j(const std::vector<double>& gaps_s,
                                 const AdaptiveTimeoutConfig& config,
                                 const pareto::DiskTimeoutParams& params) {
  AdaptiveTimeout policy(config);
  double total = 0.0;
  for (double g : gaps_s) {
    const double timeout = policy.timeout_s();
    total += gap_energy(g, timeout, params);
    if (g > timeout) {
      // The wake-up at the end of the gap: the request waited the spin-up
      // time; the idleness the spin-down exploited was the whole gap.
      policy.on_spin_up(g, params.transition_s);
    }
  }
  return total;
}

double predictive_timeout_energy_j(const std::vector<double>& gaps_s,
                                   const pareto::DiskTimeoutParams& params,
                                   double ewma_weight) {
  PredictiveTimeout policy(params.break_even_s, ewma_weight);
  double total = 0.0;
  for (double g : gaps_s) {
    const double timeout = policy.timeout_s();
    total += gap_energy(g, timeout, params);
    if (g > timeout) {
      policy.on_spin_up(g, params.transition_s);
    } else {
      policy.on_idle_end(g);
    }
  }
  return total;
}

double randomized_timeout_energy_j(const std::vector<double>& gaps_s,
                                   const pareto::DiskTimeoutParams& params,
                                   std::uint64_t seed) {
  RandomizedTimeout policy(params.break_even_s, seed);
  double total = 0.0;
  for (double g : gaps_s) {
    const double timeout = policy.timeout_s();
    total += gap_energy(g, timeout, params);
    if (g > timeout) {
      policy.on_spin_up(g, params.transition_s);
    } else {
      policy.on_idle_end(g);
    }
  }
  return total;
}

double competitive_ratio(double policy_energy_j, double oracle_j) {
  JPM_CHECK(oracle_j > 0.0);
  return policy_energy_j / oracle_j;
}

}  // namespace jpm::disk
