#include "jpm/disk/multispeed.h"

#include <algorithm>
#include <cmath>

#include "jpm/util/check.h"

namespace jpm::disk {

MultiSpeedParams drpm_params(const DiskParams& base,
                             const std::vector<double>& speed_fractions) {
  JPM_CHECK(!speed_fractions.empty());
  JPM_CHECK_MSG(speed_fractions.front() == 1.0,
                "first level must be full speed");
  MultiSpeedParams p;
  p.base = base;
  double prev = 2.0;
  for (double f : speed_fractions) {
    JPM_CHECK_MSG(f > 0.0 && f < prev, "fractions must descend from 1.0");
    prev = f;
    SpeedLevel level;
    level.speed_fraction = f;
    // DRPM power law: spindle power above the electronics floor ~ speed^2.8.
    level.idle_w =
        base.standby_w + (base.idle_w - base.standby_w) * std::pow(f, 2.8);
    level.media_rate_bytes_per_s = base.media_rate_bytes_per_s * f;
    level.rotation_s = base.avg_rotation_s / f;
    p.levels.push_back(level);
  }
  return p;
}

MultiSpeedDisk::MultiSpeedDisk(const MultiSpeedParams& params,
                               double start_time_s)
    : params_(params), start_time_s_(start_time_s), free_at_(start_time_s),
      available_at_(start_time_s), integrated_to_(start_time_s),
      finalized_at_(start_time_s), last_arrival_(start_time_s) {
  JPM_CHECK(!params.levels.empty());
  JPM_CHECK(params.step_s >= 0.0);
  JPM_CHECK(params.step_down_idle_s > 0.0);
  JPM_CHECK(params.ewma_tau_s > 0.0);
}

void MultiSpeedDisk::integrate(double t) {
  if (t <= integrated_to_) return;
  static_j_ += (params_.levels[level_].idle_w - params_.base.standby_w) *
               (t - integrated_to_);
  integrated_to_ = t;
}

void MultiSpeedDisk::advance(double now) {
  // Step down one level per idle stretch of step_down_idle_s, repeatedly.
  double idle_since = std::max(free_at_, available_at_);
  while (level_ + 1 < params_.levels.size() &&
         idle_since + params_.step_down_idle_s <= now) {
    const double shift_at = idle_since + params_.step_down_idle_s;
    integrate(shift_at);
    ++level_;
    ++down_shifts_;
    transition_j_ += params_.step_j;
    idle_since = shift_at + params_.step_s;
  }
}

void MultiSpeedDisk::shift_to_full(double t) {
  if (level_ == 0) return;
  integrate(t);
  const auto steps = static_cast<double>(level_);
  transition_j_ += params_.step_j * steps;
  up_shifts_ += level_;
  level_ = 0;
  available_at_ = std::max(available_at_, t + params_.step_s * steps);
}

DiskRequestResult MultiSpeedDisk::read(double t, std::uint64_t page,
                                       std::uint64_t bytes) {
  advance(t);

  // Utilization EWMA decays with inter-arrival time.
  const double gap = std::max(t - last_arrival_, 0.0);
  util_ewma_ *= std::exp(-gap / params_.ewma_tau_s);
  last_arrival_ = t;
  if (util_ewma_ > params_.util_high_water) shift_to_full(t);

  const SpeedLevel& level = params_.levels[level_];
  DiskRequestResult res;
  res.sequential = page == last_page_ + 1;
  const double positioning =
      res.sequential ? 0.0 : params_.base.avg_seek_s + level.rotation_s;
  const double svc = positioning +
                     static_cast<double>(bytes) / level.media_rate_bytes_per_s;

  res.triggered_spin_up = available_at_ > t && level_ == 0 && up_shifts_ > 0;
  res.start_s = std::max({t, free_at_, available_at_});
  res.finish_s = res.start_s + svc;
  res.latency_s = res.finish_s - t;
  busy_time_s_ += svc;
  util_ewma_ += svc / params_.ewma_tau_s;
  free_at_ = res.finish_s;
  last_page_ = page;
  return res;
}

void MultiSpeedDisk::finalize(double t_end) {
  advance(t_end);
  const double t = std::max(t_end, free_at_);
  integrate(t);
  finalized_at_ = std::max(finalized_at_, t);
}

DiskEnergyBreakdown MultiSpeedDisk::energy() const {
  DiskEnergyBreakdown e;
  e.standby_base_j =
      params_.base.standby_w * (finalized_at_ - start_time_s_);
  e.static_j = static_j_;
  e.transition_j = transition_j_;
  e.dynamic_j = params_.base.dynamic_power_w() * busy_time_s_;
  return e;
}

DiskEnergyBreakdown MultiSpeedDisk::energy_through(double t) {
  advance(t);
  integrate(t);
  finalized_at_ = std::max(finalized_at_, t);
  return energy();
}

}  // namespace jpm::disk
