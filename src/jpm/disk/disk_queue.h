// Disk front-end: FCFS queue + service model + power state + timeout policy.
//
// The engine submits page reads in arrival order; the disk serializes them
// (first-come-first-served, like the single IDE drive the paper models),
// waking from standby when needed. Request latency therefore includes
// queueing delay, spin-up wait, and service time — the three components the
// paper's performance constraints are designed to bound.
#pragma once

#include <cstdint>

#include "jpm/disk/disk_model.h"
#include "jpm/disk/disk_power.h"
#include "jpm/disk/timeout_policy.h"
#include "jpm/fault/fault.h"
#include "jpm/util/units.h"

namespace jpm::disk {

struct DiskRequestResult {
  double start_s = 0.0;
  double finish_s = 0.0;
  double latency_s = 0.0;
  bool triggered_spin_up = false;
  bool sequential = false;
};

class Disk {
 public:
  // `policy` is borrowed and must outlive the disk.
  Disk(const DiskParams& params, TimeoutPolicy* policy, double start_time_s);

  // Fault-injected variant: spin-up attempts can fail per `plan`, retried
  // with bounded exponential backoff; after `plan.spinup_degrade_after`
  // consecutive failures the spindle is degraded. A degraded spindle serves
  // at `degraded_service_factor` times the normal service time; when
  // `pin_when_degraded` is set (single-disk configs, where there is no
  // survivor to re-route to) it is additionally kept spinning forever.
  Disk(const DiskParams& params, TimeoutPolicy* policy, double start_time_s,
       const fault::FaultPlan& plan, std::uint32_t spindle_index,
       bool pin_when_degraded);

  // Processes any timeout expiry up to `now`. Idempotent; called by read()
  // too, but the engine should also call it at period boundaries so spin-
  // downs are not deferred across quiet stretches.
  void advance(double now);

  // Reads `bytes` at `page` arriving at time t (nondecreasing across calls).
  DiskRequestResult read(double t, std::uint64_t page, std::uint64_t bytes);

  void finalize(double t_end);

  DiskState state() const { return meter_.state(); }
  double busy_time_s() const { return meter_.busy_time_s(); }
  std::uint64_t shutdowns() const { return meter_.shutdowns(); }
  std::uint64_t requests() const { return requests_; }
  DiskEnergyBreakdown energy() const { return meter_.breakdown(); }
  // Integrates the power books through exactly `t` (mid-run snapshot, e.g.
  // at a warm-up boundary) and returns the cumulative breakdown.
  DiskEnergyBreakdown energy_through(double t);
  const ServiceModel& service() const { return service_; }
  // Time the disk became (or becomes) free of queued work.
  double free_at() const { return free_at_; }

  // True once the spindle hit `spinup_degrade_after` consecutive spin-up
  // failures; arrays consult this to re-route stripes to survivors.
  bool degraded() const { return degraded_; }
  const fault::ReliabilityMetrics& reliability() const {
    return reliability_;
  }

 private:
  ServiceModel service_;
  TimeoutPolicy* policy_;
  DiskPowerMeter meter_;
  double free_at_;
  double available_at_;  // spin-up completion when state is kSpinningUp
  std::uint64_t last_page_ = ~std::uint64_t{0} - 1;
  std::uint64_t requests_ = 0;
  fault::SpinUpFaultStream fault_;
  fault::ReliabilityMetrics reliability_;
  bool pin_when_degraded_ = false;
  bool degraded_ = false;
  double degraded_since_ = 0.0;
};

}  // namespace jpm::disk
