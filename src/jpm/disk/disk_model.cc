#include "jpm/disk/disk_model.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace jpm::disk {
namespace {

[[noreturn]] void reject(const DiskParams& p, const std::string& why) {
  std::ostringstream os;
  os << "invalid DiskParams: " << why << " (active " << p.active_w
     << " W, idle " << p.idle_w << " W, standby " << p.standby_w
     << " W, transition " << p.transition_j << " J, spin-up " << p.spin_up_s
     << " s)";
  throw std::invalid_argument(os.str());
}

}  // namespace

void DiskParams::validate() const {
  if (!(std::isfinite(active_w) && std::isfinite(idle_w) &&
        std::isfinite(standby_w) && std::isfinite(transition_j) &&
        std::isfinite(spin_up_s) && std::isfinite(avg_seek_s) &&
        std::isfinite(avg_rotation_s) &&
        std::isfinite(media_rate_bytes_per_s))) {
    reject(*this, "all parameters must be finite");
  }
  if (idle_w <= standby_w) {
    reject(*this,
           "idle_w must exceed standby_w — otherwise the manageable static "
           "power is nonpositive and break_even_s() divides by zero or goes "
           "negative, silently corrupting every timeout decision");
  }
  if (standby_w < 0.0) reject(*this, "standby_w must be nonnegative");
  if (active_w < idle_w) reject(*this, "active_w must be at least idle_w");
  if (transition_j <= 0.0) reject(*this, "transition_j must be positive");
  if (spin_up_s < 0.0) reject(*this, "spin_up_s must be nonnegative");
  if (avg_seek_s < 0.0 || avg_rotation_s < 0.0) {
    reject(*this, "positioning times must be nonnegative");
  }
  if (media_rate_bytes_per_s <= 0.0) {
    reject(*this, "media_rate_bytes_per_s must be positive");
  }
}

namespace presets {

DiskParams server_ide() { return DiskParams{}; }

DiskParams laptop_25() {
  DiskParams p;
  p.active_w = 2.5;
  p.idle_w = 0.85;
  p.standby_w = 0.25;
  p.transition_j = 6.0;   // ~2.5 J down + 3.5 J up
  p.spin_up_s = 2.5;
  p.avg_seek_s = 12.0e-3;
  p.avg_rotation_s = 5.56e-3;  // 5400 rpm
  p.media_rate_bytes_per_s = 35.0e6;
  return p;
}

DiskParams ssd_like() {
  DiskParams p;
  p.active_w = 3.0;
  p.idle_w = 0.35;
  p.standby_w = 0.05;
  p.transition_j = 0.05;  // context save/restore, no mechanics
  p.spin_up_s = 0.01;
  p.avg_seek_s = 0.05e-3;
  p.avg_rotation_s = 0.0;
  p.media_rate_bytes_per_s = 450.0e6;
  return p;
}

}  // namespace presets
}  // namespace jpm::disk
