#include "jpm/disk/disk_model.h"

namespace jpm::disk::presets {

DiskParams server_ide() { return DiskParams{}; }

DiskParams laptop_25() {
  DiskParams p;
  p.active_w = 2.5;
  p.idle_w = 0.85;
  p.standby_w = 0.25;
  p.transition_j = 6.0;   // ~2.5 J down + 3.5 J up
  p.spin_up_s = 2.5;
  p.avg_seek_s = 12.0e-3;
  p.avg_rotation_s = 5.56e-3;  // 5400 rpm
  p.media_rate_bytes_per_s = 35.0e6;
  return p;
}

DiskParams ssd_like() {
  DiskParams p;
  p.active_w = 3.0;
  p.idle_w = 0.35;
  p.standby_w = 0.05;
  p.transition_j = 0.05;  // context save/restore, no mechanics
  p.spin_up_s = 0.01;
  p.avg_seek_s = 0.05e-3;
  p.avg_rotation_s = 0.0;
  p.media_rate_bytes_per_s = 450.0e6;
  return p;
}

}  // namespace jpm::disk::presets
