#include "jpm/disk/timeout_policy.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "jpm/util/check.h"

namespace jpm::disk {

FixedTimeout::FixedTimeout(double timeout_s) : timeout_(timeout_s) {
  JPM_CHECK(timeout_s >= 0.0);
}

std::string FixedTimeout::name() const {
  std::ostringstream os;
  os << "fixed(" << timeout_ << "s)";
  return os.str();
}

AdaptiveTimeout::AdaptiveTimeout(const AdaptiveTimeoutConfig& config)
    : config_(config), timeout_(config.initial_s) {
  JPM_CHECK(config.min_s > 0.0);
  JPM_CHECK(config.max_s >= config.min_s);
  JPM_CHECK(config.initial_s >= config.min_s &&
            config.initial_s <= config.max_s);
  JPM_CHECK(config.step_s > 0.0);
  JPM_CHECK(config.delay_ratio > 0.0);
}

void AdaptiveTimeout::on_spin_up(double idle_s, double delay_s) {
  // Douglis: a spin-up whose delay exceeds `delay_ratio` of the idleness it
  // exploited was too aggressive -> lengthen the timeout; otherwise shorten.
  if (delay_s > config_.delay_ratio * idle_s) {
    timeout_ += config_.step_s;
  } else {
    timeout_ -= config_.step_s;
  }
  timeout_ = std::clamp(timeout_, config_.min_s, config_.max_s);
}

DynamicTimeout::DynamicTimeout(double initial_s) : timeout_(initial_s) {
  JPM_CHECK(initial_s >= 0.0);
}

RandomizedTimeout::RandomizedTimeout(double break_even_s, std::uint64_t seed)
    : break_even_s_(break_even_s), rng_(seed * 0x7f4a7c15u + 3) {
  JPM_CHECK(break_even_s > 0.0);
  resample();
}

void RandomizedTimeout::on_spin_up(double, double) { resample(); }

void RandomizedTimeout::on_idle_end(double) { resample(); }

void RandomizedTimeout::resample() {
  // Inverse CDF of f(t) = e^(t/B) / ((e-1) B):
  //   F(t) = (e^(t/B) - 1) / (e - 1)  =>  t = B ln(1 + (e-1) u).
  const double u = rng_.uniform();
  current_ = break_even_s_ * std::log(1.0 + (std::exp(1.0) - 1.0) * u);
}

PredictiveTimeout::PredictiveTimeout(double break_even_s, double ewma_weight)
    : break_even_s_(break_even_s), weight_(ewma_weight) {
  JPM_CHECK(break_even_s > 0.0);
  JPM_CHECK(ewma_weight > 0.0 && ewma_weight <= 1.0);
}

double PredictiveTimeout::timeout_s() const {
  return predicted_idle_s_ > break_even_s_ ? 0.0 : pareto::kNeverTimeout;
}

void PredictiveTimeout::on_spin_up(double idle_s, double) { observe(idle_s); }

void PredictiveTimeout::on_idle_end(double idle_s) { observe(idle_s); }

void PredictiveTimeout::observe(double idle_s) {
  predicted_idle_s_ =
      (1.0 - weight_) * predicted_idle_s_ + weight_ * idle_s;
}

void DynamicTimeout::set_timeout(double timeout_s) {
  JPM_CHECK(timeout_s >= 0.0);
  timeout_ = timeout_s;
}

}  // namespace jpm::disk
