// Storage abstraction: anything that serves page reads with power-state
// accounting. The single spin-down disk (Disk), the striped multi-disk array
// (DiskArray — the paper's future-work extension), and the DRPM-style
// multi-speed disk (MultiSpeedDisk) all implement it, so the simulation
// engine is agnostic to the storage backend.
#pragma once

#include <cstdint>

#include "jpm/disk/disk_power.h"
#include "jpm/disk/disk_queue.h"

namespace jpm::disk {

class Storage {
 public:
  virtual ~Storage() = default;

  // Processes timer expiries (spin-downs / speed steps) up to `now`.
  virtual void advance(double now) = 0;
  // Serves a page read arriving at t (nondecreasing across calls).
  virtual DiskRequestResult read(double t, std::uint64_t page,
                                 std::uint64_t bytes) = 0;
  virtual void finalize(double t_end) = 0;

  virtual DiskEnergyBreakdown energy() const = 0;
  // Integrates the books through exactly t and returns the cumulative
  // breakdown (mid-run snapshot).
  virtual DiskEnergyBreakdown energy_through(double t) = 0;
  virtual double busy_time_s() const = 0;
  virtual std::uint64_t shutdowns() const = 0;
  // Number of independently-utilizable spindles (for utilization averaging).
  virtual std::uint32_t spindle_count() const = 0;
  // Fault-injection counters; all-zero for backends without fault support
  // or on a fault-free run.
  virtual fault::ReliabilityMetrics reliability() const { return {}; }
};

// Adapts the single Disk to the Storage interface.
class SingleDiskStorage final : public Storage {
 public:
  SingleDiskStorage(const DiskParams& params, TimeoutPolicy* policy,
                    double start_time_s)
      : disk_(params, policy, start_time_s) {}

  // Fault-injected variant. A degraded single disk has no survivor to
  // re-route to, so it is pinned always-on (pin_when_degraded).
  SingleDiskStorage(const DiskParams& params, TimeoutPolicy* policy,
                    double start_time_s, const fault::FaultPlan& plan)
      : disk_(params, policy, start_time_s, plan, /*spindle_index=*/0,
              /*pin_when_degraded=*/true) {}

  void advance(double now) override { disk_.advance(now); }
  DiskRequestResult read(double t, std::uint64_t page,
                         std::uint64_t bytes) override {
    return disk_.read(t, page, bytes);
  }
  void finalize(double t_end) override { disk_.finalize(t_end); }
  DiskEnergyBreakdown energy() const override { return disk_.energy(); }
  DiskEnergyBreakdown energy_through(double t) override {
    return disk_.energy_through(t);
  }
  double busy_time_s() const override { return disk_.busy_time_s(); }
  std::uint64_t shutdowns() const override { return disk_.shutdowns(); }
  std::uint32_t spindle_count() const override { return 1; }
  fault::ReliabilityMetrics reliability() const override {
    return disk_.reliability();
  }

  const Disk& disk() const { return disk_; }

 private:
  Disk disk_;
};

}  // namespace jpm::disk
