#include "jpm/disk/disk_queue.h"

#include <algorithm>
#include <cmath>

#include "jpm/util/check.h"

namespace jpm::disk {

Disk::Disk(const DiskParams& params, TimeoutPolicy* policy,
           double start_time_s)
    : service_(params), policy_(policy), meter_(params, start_time_s),
      free_at_(start_time_s), available_at_(start_time_s) {
  JPM_CHECK(policy != nullptr);
}

void Disk::advance(double now) {
  if (meter_.state() != DiskState::kOn) return;
  if (now <= free_at_) return;  // still busy (or exactly done) — not idle yet
  const double timeout = policy_->timeout_s();
  if (std::isinf(timeout)) return;
  const double expiry = free_at_ + timeout;
  if (expiry <= now) meter_.spin_down(expiry);
}

DiskRequestResult Disk::read(double t, std::uint64_t page,
                             std::uint64_t bytes) {
  advance(t);
  ++requests_;

  DiskRequestResult res;
  double earliest = t;
  if (meter_.state() == DiskState::kOn && t > free_at_) {
    // The idle stretch ends without a spin-down; predictive policies learn
    // from these observations too.
    policy_->on_idle_end(t - free_at_);
  }
  if (meter_.state() == DiskState::kStandby) {
    // Wake on demand. The idleness this spin-down exploited ran from the
    // moment the disk drained its queue until now.
    const double idle_before = t - free_at_;
    meter_.begin_spin_up(t);
    available_at_ = t + service_.params().spin_up_s;
    policy_->on_spin_up(idle_before, available_at_ - t);
    res.triggered_spin_up = true;
  }
  if (meter_.state() == DiskState::kSpinningUp) {
    earliest = std::max(earliest, available_at_);
    meter_.complete_spin_up(available_at_);
  }

  res.sequential = page == last_page_ + 1;
  const double svc = service_.service_time_s(bytes, res.sequential);
  res.start_s = std::max(earliest, free_at_);
  res.finish_s = res.start_s + svc;
  res.latency_s = res.finish_s - t;
  meter_.add_busy_time(svc);
  free_at_ = res.finish_s;
  last_page_ = page;
  return res;
}

DiskEnergyBreakdown Disk::energy_through(double t) {
  advance(t);
  meter_.finalize(t);
  return meter_.breakdown();
}

void Disk::finalize(double t_end) {
  advance(t_end);
  meter_.finalize(std::max(t_end, free_at_));
}

}  // namespace jpm::disk
