#include "jpm/disk/disk_queue.h"

#include <algorithm>
#include <cmath>

#include "jpm/telemetry/telemetry.h"
#include "jpm/util/check.h"

namespace jpm::disk {

Disk::Disk(const DiskParams& params, TimeoutPolicy* policy,
           double start_time_s)
    : service_(params), policy_(policy), meter_(params, start_time_s),
      free_at_(start_time_s), available_at_(start_time_s) {
  JPM_CHECK(policy != nullptr);
}

Disk::Disk(const DiskParams& params, TimeoutPolicy* policy,
           double start_time_s, const fault::FaultPlan& plan,
           std::uint32_t spindle_index, bool pin_when_degraded)
    : service_(params), policy_(policy), meter_(params, start_time_s),
      free_at_(start_time_s), available_at_(start_time_s),
      fault_(plan, spindle_index), pin_when_degraded_(pin_when_degraded) {
  JPM_CHECK(policy != nullptr);
}

void Disk::advance(double now) {
  if (degraded_ && pin_when_degraded_) return;  // pinned always-on
  if (meter_.state() != DiskState::kOn) return;
  if (now <= free_at_) return;  // still busy (or exactly done) — not idle yet
  const double timeout = policy_->timeout_s();
  if (std::isinf(timeout)) return;
  const double expiry = free_at_ + timeout;
  if (expiry <= now) {
    meter_.spin_down(expiry);
    TELEM_EVENT(kDisk, "spin_down", expiry, {"timeout_s", timeout});
  }
}

DiskRequestResult Disk::read(double t, std::uint64_t page,
                             std::uint64_t bytes) {
  advance(t);
  ++requests_;

  DiskRequestResult res;
  double earliest = t;
  if (meter_.state() == DiskState::kOn && t > free_at_) {
    // The idle stretch ends without a spin-down; predictive policies learn
    // from these observations too.
    policy_->on_idle_end(t - free_at_);
  }
  if (meter_.state() == DiskState::kStandby) {
    // Wake on demand. The idleness this spin-down exploited ran from the
    // moment the disk drained its queue until now.
    const double idle_before = t - free_at_;
    meter_.begin_spin_up(t);
    double spin_delay = service_.params().spin_up_s;
    if (fault_.active() && !degraded_) {
      // Injected spin-up failures: each failed attempt burns a full
      // transition's energy plus the spin-up time, then backs off
      // exponentially (bounded) before the next try. Past
      // `spinup_degrade_after` consecutive failures the spindle is declared
      // degraded and the final attempt is forced to succeed — the drive
      // still turns, it just can no longer be trusted to cycle.
      std::uint32_t failed = 0;
      while (fault_.attempt_fails()) {
        ++failed;
        ++reliability_.spinup_retries;
        meter_.add_fault_transition(service_.params().transition_j);
        const double wasted =
            service_.params().spin_up_s + fault_.backoff_s(failed);
        reliability_.retry_delay_s += wasted;
        spin_delay += wasted;
        TELEM_EVENT(kFault, "spinup_retry", t,
                    {"attempt", static_cast<double>(failed)},
                    {"wasted_s", wasted});
        if (failed >= fault_.plan().spinup_degrade_after) {
          degraded_ = true;
          degraded_since_ = t;
          ++reliability_.degraded_spindles;
          TELEM_EVENT(kFault, "spindle_degraded", t,
                      {"after_retries", static_cast<double>(failed)});
          break;
        }
      }
    }
    available_at_ = t + spin_delay;
    policy_->on_spin_up(idle_before, available_at_ - t);
    res.triggered_spin_up = true;
    TELEM_EVENT(kDisk, "spin_up", t, {"idle_before_s", idle_before},
                {"wait_s", spin_delay});
  }
  if (meter_.state() == DiskState::kSpinningUp) {
    earliest = std::max(earliest, available_at_);
    meter_.complete_spin_up(available_at_);
  }

  res.sequential = page == last_page_ + 1;
  double svc = service_.service_time_s(bytes, res.sequential);
  if (degraded_) svc *= fault_.plan().degraded_service_factor;
  res.start_s = std::max(earliest, free_at_);
  res.finish_s = res.start_s + svc;
  res.latency_s = res.finish_s - t;
  meter_.add_busy_time(svc);
  free_at_ = res.finish_s;
  last_page_ = page;
  return res;
}

DiskEnergyBreakdown Disk::energy_through(double t) {
  advance(t);
  meter_.finalize(t);
  return meter_.breakdown();
}

void Disk::finalize(double t_end) {
  advance(t_end);
  const double end = std::max(t_end, free_at_);
  meter_.finalize(end);
  if (degraded_ && end > degraded_since_) {
    reliability_.degraded_time_s += end - degraded_since_;
    degraded_since_ = end;  // idempotent under repeated finalize
  }
}

}  // namespace jpm::disk
