// DRPM-style multi-speed disk (Gurumurthi et al., the paper's reference
// [12]) — the alternative to spin-down the paper positions itself against,
// and one of its future-work items ("multiple-speed disks").
//
// Instead of stopping the platters, the disk shifts among rotation-speed
// levels: spinning at fraction f of full speed costs roughly f^2.8 of the
// manageable idle power, serves transfers at f of the media rate, and adds
// 1/f rotational latency. Speed shifts take seconds, not the ~10 s of a full
// spin-up, so the latency cliff of on-demand wake-ups disappears at the cost
// of a nonzero power floor.
//
// Control policy (watermark style, as in DRPM): step one level down after a
// configurable idle stretch; step straight back to full speed when the
// utilization EWMA crosses the high watermark — service continues at reduced
// speed below it.
#pragma once

#include <cstdint>
#include <vector>

#include "jpm/disk/storage.h"

namespace jpm::disk {

struct SpeedLevel {
  double speed_fraction = 1.0;  // of full rotation speed
  double idle_w = 7.5;          // spinning idle at this speed
  double media_rate_bytes_per_s = 58e6;
  double rotation_s = 4.16e-3;  // average rotational latency
};

struct MultiSpeedParams {
  DiskParams base;                // seek time, dynamic delta, standby floor
  std::vector<SpeedLevel> levels; // [0] = full speed, descending
  double step_s = 2.0;            // time per one-level shift
  double step_j = 8.0;            // energy per one-level shift
  double step_down_idle_s = 10.0; // idleness before shifting down a level
  double util_high_water = 0.30;  // EWMA utilization forcing full speed
  double ewma_tau_s = 60.0;
};

// Levels derived from the paper's Seagate drive with the DRPM power law
// (idle power above standby scales with speed^2.8).
MultiSpeedParams drpm_params(const DiskParams& base,
                             const std::vector<double>& speed_fractions = {
                                 1.0, 0.75, 0.5, 0.35});

class MultiSpeedDisk final : public Storage {
 public:
  MultiSpeedDisk(const MultiSpeedParams& params, double start_time_s);

  void advance(double now) override;
  DiskRequestResult read(double t, std::uint64_t page,
                         std::uint64_t bytes) override;
  void finalize(double t_end) override;
  DiskEnergyBreakdown energy() const override;
  DiskEnergyBreakdown energy_through(double t) override;
  double busy_time_s() const override { return busy_time_s_; }
  // Speed downshifts (the closest analogue of spin-downs for reporting).
  std::uint64_t shutdowns() const override { return down_shifts_; }
  std::uint32_t spindle_count() const override { return 1; }

  std::size_t current_level() const { return level_; }
  std::uint64_t total_shifts() const { return down_shifts_ + up_shifts_; }
  double utilization_ewma() const { return util_ewma_; }

 private:
  void integrate(double t);      // static-energy bookkeeping through t
  void shift_to_full(double t);  // begin step-up; sets available_at_

  MultiSpeedParams params_;
  double start_time_s_;
  std::size_t level_ = 0;
  double free_at_;
  double available_at_;  // end of an in-flight step-up
  double integrated_to_;
  double finalized_at_;
  double static_j_ = 0.0;
  double transition_j_ = 0.0;
  double busy_time_s_ = 0.0;
  double util_ewma_ = 0.0;
  double last_arrival_;
  std::uint64_t last_page_ = ~std::uint64_t{0} - 1;
  std::uint64_t down_shifts_ = 0;
  std::uint64_t up_shifts_ = 0;
};

}  // namespace jpm::disk
