// Disk spin-down timeout policies.
//
//   * FixedTimeout — the 2-competitive policy (2T): timeout = break-even
//     time, never worse than twice the offline oracle (Karlin et al.).
//   * AdaptiveTimeout — Douglis et al.'s adaptive spin-down (AD): the paper's
//     configuration starts at 10 s, moves in 5 s steps within [5 s, 30 s],
//     and compares the spin-up delay against 5% of the idle time preceding
//     the spin-up: costlier wake-ups push the timeout up, cheap ones pull it
//     down.
//   * DynamicTimeout — owned by the joint power manager, which installs a
//     new value every period (possibly "never spin down").
//   * NeverTimeout — the always-on baseline.
#pragma once

#include <memory>
#include <string>

#include "jpm/pareto/timeout_math.h"
#include "jpm/util/rng.h"

namespace jpm::disk {

class TimeoutPolicy {
 public:
  virtual ~TimeoutPolicy() = default;
  // Current timeout in seconds; pareto::kNeverTimeout disables spin-down.
  virtual double timeout_s() const = 0;
  // Notification that a spin-up occurred after `idle_s` of disk idleness,
  // delaying a request by `delay_s`.
  virtual void on_spin_up(double idle_s, double delay_s) = 0;
  // Notification that an idle stretch of `idle_s` ended with the disk still
  // on (no spin-down happened). Predictive policies learn from these;
  // default is to ignore them.
  virtual void on_idle_end(double idle_s) { (void)idle_s; }
  virtual std::string name() const = 0;
};

class FixedTimeout final : public TimeoutPolicy {
 public:
  explicit FixedTimeout(double timeout_s);
  double timeout_s() const override { return timeout_; }
  void on_spin_up(double, double) override {}
  std::string name() const override;

 private:
  double timeout_;
};

struct AdaptiveTimeoutConfig {
  double initial_s = 10.0;
  double min_s = 5.0;
  double max_s = 30.0;
  double step_s = 5.0;
  double delay_ratio = 0.05;  // acceptable spin-up delay / preceding idle
};

class AdaptiveTimeout final : public TimeoutPolicy {
 public:
  explicit AdaptiveTimeout(const AdaptiveTimeoutConfig& config = {});
  double timeout_s() const override { return timeout_; }
  void on_spin_up(double idle_s, double delay_s) override;
  std::string name() const override { return "adaptive"; }

 private:
  AdaptiveTimeoutConfig config_;
  double timeout_;
};

class DynamicTimeout final : public TimeoutPolicy {
 public:
  explicit DynamicTimeout(double initial_s);
  double timeout_s() const override { return timeout_; }
  void set_timeout(double timeout_s);
  void on_spin_up(double, double) override {}
  std::string name() const override { return "dynamic"; }

 private:
  double timeout_;
};

class NeverTimeout final : public TimeoutPolicy {
 public:
  double timeout_s() const override { return pareto::kNeverTimeout; }
  void on_spin_up(double, double) override {}
  std::string name() const override { return "always-on"; }
};

// Karlin et al.'s randomized rent-or-buy policy (the paper's ref. [41]):
// each idle period draws a fresh timeout from the density
//   f(t) = e^(t/t_be) / ((e - 1) t_be) on [0, t_be],
// which is e/(e-1) ~ 1.58-competitive against the offline oracle in
// expectation — better than any deterministic timeout's factor 2. The engine
// resamples via on_spin_up/on_idle_end (i.e., once per idle interval).
class RandomizedTimeout final : public TimeoutPolicy {
 public:
  RandomizedTimeout(double break_even_s, std::uint64_t seed = 1);
  double timeout_s() const override { return current_; }
  void on_spin_up(double idle_s, double delay_s) override;
  void on_idle_end(double idle_s) override;
  std::string name() const override { return "randomized"; }

 private:
  void resample();

  double break_even_s_;
  Rng rng_;
  double current_;
};

// Session-predictive policy in the spirit of Lu & Micheli's adaptive disk
// management: an EWMA over observed idle lengths predicts the next idle
// interval; when the prediction exceeds the break-even time the disk spins
// down immediately (timeout 0), otherwise it stays on. Mispredictions
// self-correct because every idle interval — exploited or not — feeds the
// estimate.
class PredictiveTimeout final : public TimeoutPolicy {
 public:
  PredictiveTimeout(double break_even_s, double ewma_weight = 0.25);
  double timeout_s() const override;
  void on_spin_up(double idle_s, double delay_s) override;
  void on_idle_end(double idle_s) override;
  std::string name() const override { return "predictive"; }
  double predicted_idle_s() const { return predicted_idle_s_; }

 private:
  void observe(double idle_s);

  double break_even_s_;
  double weight_;
  double predicted_idle_s_ = 0.0;
};

}  // namespace jpm::disk
