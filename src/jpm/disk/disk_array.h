// Striped multi-disk array — the paper's future-work extension to multiple
// disks ("such extension needs to consider management of the disk cache for
// multiple disks, data layout across disks, and workload distributions").
//
// Pages are laid out in fixed-size stripes rotated across the spindles, so
// sequential runs stay on one disk for a whole stripe (preserving the
// sequential-service benefit) while the aggregate load spreads. Each disk
// runs its own timeout-policy instance (adaptive policies keep per-disk
// state); a shared dynamic timeout can be layered via SharedTimeout so the
// joint power manager steers all spindles with one decision.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "jpm/disk/storage.h"

namespace jpm::disk {

// Forwards to a shared DynamicTimeout so one joint decision controls every
// disk of an array. The source must outlive the wrapper.
class SharedTimeout final : public TimeoutPolicy {
 public:
  explicit SharedTimeout(const DynamicTimeout* source) : source_(source) {}
  double timeout_s() const override { return source_->timeout_s(); }
  void on_spin_up(double, double) override {}
  std::string name() const override { return "shared-dynamic"; }

 private:
  const DynamicTimeout* source_;
};

struct DiskArrayConfig {
  std::uint32_t disk_count = 1;
  // Bytes per stripe extent; pages within one stripe map to one disk.
  std::uint64_t stripe_bytes = 64 * kMiB;
  std::uint64_t page_bytes = 256 * kKiB;
  DiskParams params;
  // Fault injection (disabled by default). Spindle i draws its spin-up
  // failures from the sub-stream (fault.seed, i); degraded spindles stop
  // receiving stripes — read() re-routes to the next survivor in ring order.
  fault::FaultPlan fault;
};

class DiskArray final : public Storage {
 public:
  using PolicyFactory = std::function<std::unique_ptr<TimeoutPolicy>()>;

  DiskArray(const DiskArrayConfig& config, const PolicyFactory& factory,
            double start_time_s);

  void advance(double now) override;
  DiskRequestResult read(double t, std::uint64_t page,
                         std::uint64_t bytes) override;
  void finalize(double t_end) override;
  DiskEnergyBreakdown energy() const override;
  DiskEnergyBreakdown energy_through(double t) override;
  double busy_time_s() const override;
  std::uint64_t shutdowns() const override;
  std::uint32_t spindle_count() const override {
    return static_cast<std::uint32_t>(disks_.size());
  }

  // Which spindle the stripe map assigns the page to (ignores degradation;
  // read() re-routes away from degraded spindles on top of this).
  std::uint32_t disk_of(std::uint64_t page) const;
  const Disk& disk(std::uint32_t i) const;
  // Per-disk request counts (data-layout diagnostics).
  const std::vector<std::uint64_t>& requests_per_disk() const {
    return requests_;
  }
  fault::ReliabilityMetrics reliability() const override;

 private:
  DiskArrayConfig config_;
  std::uint64_t pages_per_stripe_;
  std::vector<std::unique_ptr<TimeoutPolicy>> policies_;
  std::vector<std::unique_ptr<Disk>> disks_;
  std::vector<std::uint64_t> requests_;
  std::uint64_t rerouted_requests_ = 0;
};

}  // namespace jpm::disk
