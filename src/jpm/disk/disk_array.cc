#include "jpm/disk/disk_array.h"

#include "jpm/telemetry/registry.h"
#include "jpm/telemetry/telemetry.h"
#include "jpm/util/check.h"

namespace jpm::disk {

DiskArray::DiskArray(const DiskArrayConfig& config,
                     const PolicyFactory& factory, double start_time_s)
    : config_(config) {
  JPM_CHECK(config.disk_count > 0);
  JPM_CHECK(config.page_bytes > 0);
  JPM_CHECK_MSG(config.stripe_bytes % config.page_bytes == 0,
                "stripe must be a whole number of pages");
  pages_per_stripe_ = config.stripe_bytes / config.page_bytes;
  JPM_CHECK(pages_per_stripe_ > 0);
  JPM_CHECK(factory != nullptr);

  policies_.reserve(config.disk_count);
  disks_.reserve(config.disk_count);
  requests_.assign(config.disk_count, 0);
  for (std::uint32_t i = 0; i < config.disk_count; ++i) {
    policies_.push_back(factory());
    JPM_CHECK(policies_.back() != nullptr);
    if (config.fault.disk_faults_active()) {
      // Array members are never pinned: a degraded spindle's stripes
      // re-route to survivors instead.
      disks_.push_back(std::make_unique<Disk>(
          config.params, policies_.back().get(), start_time_s, config.fault,
          /*spindle_index=*/i, /*pin_when_degraded=*/false));
    } else {
      disks_.push_back(std::make_unique<Disk>(config.params,
                                              policies_.back().get(),
                                              start_time_s));
    }
  }
}

std::uint32_t DiskArray::disk_of(std::uint64_t page) const {
  return static_cast<std::uint32_t>((page / pages_per_stripe_) %
                                    disks_.size());
}

const Disk& DiskArray::disk(std::uint32_t i) const {
  JPM_CHECK(i < disks_.size());
  return *disks_[i];
}

void DiskArray::advance(double now) {
  for (auto& d : disks_) d->advance(now);
}

DiskRequestResult DiskArray::read(double t, std::uint64_t page,
                                  std::uint64_t bytes) {
  std::uint32_t i = disk_of(page);
  // Graceful degradation: stripes whose home spindle is degraded re-route
  // to the next surviving spindle in ring order. The read that *detects*
  // the degradation (the failing spin-up) is still served by the home disk;
  // only subsequent reads move. With every spindle degraded the home disk
  // serves anyway (slowly) rather than dropping the request.
  if (disks_[i]->degraded()) {
    for (std::uint32_t step = 1; step < disks_.size(); ++step) {
      const std::uint32_t candidate =
          static_cast<std::uint32_t>((i + step) % disks_.size());
      if (!disks_[candidate]->degraded()) {
        TELEM_EVENT(kDisk, "reroute", t,
                    {"from", static_cast<double>(i)},
                    {"to", static_cast<double>(candidate)});
        i = candidate;
        ++rerouted_requests_;
        break;
      }
    }
  }
  ++requests_[i];
  // Per-spindle load-balance gauge: how far the hottest spindle has pulled
  // ahead of the arriving request's home. Cheap enough to sample per read
  // (one relaxed load when telemetry is off).
  if (telemetry::category_enabled(telemetry::Category::kDisk)) {
    if (telemetry::RunRecorder* rec = telemetry::current_run()) {
      rec->gauge("array_spindle_backlog_s")
          .set(std::max(0.0, disks_[i]->free_at() - t));
    }
  }
  // Present the disk with its stripe-local page index so striping does not
  // break sequential-run detection within a stripe.
  const std::uint64_t stripe = page / pages_per_stripe_;
  const std::uint64_t local =
      (stripe / disks_.size()) * pages_per_stripe_ + page % pages_per_stripe_;
  return disks_[i]->read(t, local, bytes);
}

void DiskArray::finalize(double t_end) {
  for (auto& d : disks_) d->finalize(t_end);
}

DiskEnergyBreakdown DiskArray::energy() const {
  DiskEnergyBreakdown total;
  for (const auto& d : disks_) {
    const auto e = d->energy();
    total.standby_base_j += e.standby_base_j;
    total.static_j += e.static_j;
    total.transition_j += e.transition_j;
    total.dynamic_j += e.dynamic_j;
  }
  return total;
}

DiskEnergyBreakdown DiskArray::energy_through(double t) {
  DiskEnergyBreakdown total;
  for (auto& d : disks_) {
    const auto e = d->energy_through(t);
    total.standby_base_j += e.standby_base_j;
    total.static_j += e.static_j;
    total.transition_j += e.transition_j;
    total.dynamic_j += e.dynamic_j;
  }
  return total;
}

double DiskArray::busy_time_s() const {
  double total = 0.0;
  for (const auto& d : disks_) total += d->busy_time_s();
  return total;
}

std::uint64_t DiskArray::shutdowns() const {
  std::uint64_t total = 0;
  for (const auto& d : disks_) total += d->shutdowns();
  return total;
}

fault::ReliabilityMetrics DiskArray::reliability() const {
  fault::ReliabilityMetrics total;
  for (const auto& d : disks_) total.merge(d->reliability());
  total.rerouted_requests += rerouted_requests_;
  return total;
}

}  // namespace jpm::disk
