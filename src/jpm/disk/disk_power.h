// Disk power-state accounting.
//
// Energy model mirrors the paper's eq. (4) bookkeeping exactly:
//   total = standby_w * duration                (floor the disk never leaves)
//         + p_d * (time in the on state)        (idle power above standby)
//         + transition_j * shutdowns            (round-trip mode transitions;
//                                                spin-up/-down intervals are
//                                                covered by this term and do
//                                                not also accrue p_d)
//         + (active_w - idle_w) * busy time.    (dynamic)
#pragma once

#include <cstdint>

#include "jpm/disk/disk_model.h"

namespace jpm::disk {

enum class DiskState { kOn, kSpinningUp, kStandby };

struct DiskEnergyBreakdown {
  double standby_base_j = 0.0;
  double static_j = 0.0;      // p_d over on-time
  double transition_j = 0.0;  // round-trip transitions
  double dynamic_j = 0.0;     // seeking/transferring
  double total_j() const {
    return standby_base_j + static_j + transition_j + dynamic_j;
  }
};

class DiskPowerMeter {
 public:
  DiskPowerMeter(const DiskParams& params, double start_time_s);

  void spin_down(double t);        // kOn -> kStandby; counts one shutdown
  void begin_spin_up(double t);    // kStandby -> kSpinningUp
  void complete_spin_up(double t); // kSpinningUp -> kOn
  void add_busy_time(double dt);   // service time (dynamic energy)
  // Energy burned by a failed (fault-injected) spin-up attempt; booked into
  // the transition term without counting a shutdown.
  void add_fault_transition(double joules);
  void finalize(double t);         // close the books at end of run

  DiskState state() const { return state_; }
  double on_time_s() const { return on_time_s_; }
  double busy_time_s() const { return busy_time_s_; }
  std::uint64_t shutdowns() const { return shutdowns_; }

  DiskEnergyBreakdown breakdown() const;

 private:
  DiskParams params_;
  double start_time_s_;
  DiskState state_ = DiskState::kOn;
  double on_since_ = 0.0;
  double on_time_s_ = 0.0;
  double busy_time_s_ = 0.0;
  double finalized_at_ = 0.0;
  double fault_transition_j_ = 0.0;
  std::uint64_t shutdowns_ = 0;
};

}  // namespace jpm::disk
